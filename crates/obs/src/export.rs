//! Exporters: Prometheus text exposition, the versioned [`RunManifest`]
//! JSON snapshot, and a human-readable hierarchical stage profile.

use crate::metrics::{Histogram, MetricSheet};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Version stamp of the [`RunManifest`] JSON layout.
pub const MANIFEST_VERSION: u32 = 1;

/// The versioned JSON snapshot `full_campaign --metrics-out` writes: enough
/// to reproduce the run (config fingerprint, seed, threads) plus everything
/// the telemetry layer collected (counters, histograms, per-link ledgers,
/// per-stage timings, per-worker stats).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunManifest {
    /// Layout version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Fingerprint of the measurement-shaping configuration.
    pub config_fingerprint: u64,
    /// Substrate/build seed.
    pub seed: u64,
    /// Resolved worker thread count.
    pub threads: usize,
    /// Total wall time of the run, seconds (volatile).
    pub wall_secs: f64,
    /// The collected telemetry.
    pub sheet: MetricSheet,
}

impl RunManifest {
    /// Assemble a manifest around a drained sheet.
    pub fn new(
        config_fingerprint: u64,
        seed: u64,
        threads: usize,
        wall_secs: f64,
        sheet: MetricSheet,
    ) -> RunManifest {
        RunManifest { version: MANIFEST_VERSION, config_fingerprint, seed, threads, wall_secs, sheet }
    }

    /// Pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parse a manifest back (validation, tests, tooling).
    pub fn from_json(s: &str) -> Result<RunManifest, String> {
        let m: RunManifest = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if m.version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {}", m.version));
        }
        Ok(m)
    }

    /// The manifest with every wall-clock-derived field zeroed: run wall
    /// time, per-stage `wall_ns`, the per-worker table (work stealing makes
    /// item→worker assignment scheduling-dependent), and quarantine worker
    /// indices. What remains is a pure function of (config, seed, thread
    /// count) — and everything except per-worker gauges is identical at
    /// *any* thread count. Serialized for the determinism tests.
    pub fn deterministic_json(&self) -> String {
        let mut m = self.clone();
        m.wall_secs = 0.0;
        m.sheet.workers.clear();
        // Gauges observe the run, not the result: peak RSS and the active-
        // window high-water mark depend on the host and on scheduling, the
        // same class of volatility as the per-worker table.
        m.sheet.gauges.clear();
        for t in m.sheet.stages.values_mut() {
            t.wall_ns = 0;
        }
        for l in m.sheet.ledgers.values_mut() {
            if let Some(q) = &mut l.quarantined {
                q.worker = 0;
            }
        }
        serde_json::to_string_pretty(&m).expect("manifest serializes")
    }
}

/// Make a metric or label chunk exposition-safe.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' }).collect()
}

fn esc_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn write_hist(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, c) in h.counts.iter().enumerate() {
        cum += c;
        let ub = Histogram::upper_bound(i);
        if ub.is_infinite() {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_f64(ub));
        }
    }
    let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum()));
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render a sheet in the Prometheus text exposition format (v0.0.4), every
/// series prefixed `ixp_`. Counters and gauges map directly; histograms get
/// the classic cumulative `_bucket`/`_sum`/`_count` triplet; per-link
/// ledgers, stages, and workers become labeled families.
pub fn prometheus_text(sheet: &MetricSheet) -> String {
    let mut out = String::new();
    for (k, v) in &sheet.counters {
        let name = format!("ixp_{}_total", sanitize(k));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (k, v) in &sheet.gauges {
        let name = format!("ixp_{}", sanitize(k));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(*v));
    }
    for (k, h) in &sheet.histograms {
        write_hist(&mut out, &format!("ixp_{}", sanitize(k)), h);
    }
    if !sheet.ledgers.is_empty() {
        for fam in ["probes_sent", "probes_answered", "probes_timed_out", "probes_retried", "probes_rate_limited"] {
            let _ = writeln!(out, "# TYPE ixp_link_{fam}_total counter");
        }
        for (link, l) in &sheet.ledgers {
            let lab = esc_label(link);
            let _ = writeln!(out, "ixp_link_probes_sent_total{{link=\"{lab}\"}} {}", l.sent);
            let _ = writeln!(out, "ixp_link_probes_answered_total{{link=\"{lab}\"}} {}", l.answered);
            let _ = writeln!(out, "ixp_link_probes_timed_out_total{{link=\"{lab}\"}} {}", l.timed_out);
            let _ = writeln!(out, "ixp_link_probes_retried_total{{link=\"{lab}\"}} {}", l.retries);
            let _ = writeln!(
                out,
                "ixp_link_probes_rate_limited_total{{link=\"{lab}\"}} {}",
                l.rate_limited
            );
            if let Some(h) = &l.health {
                let _ = writeln!(
                    out,
                    "ixp_link_health{{link=\"{lab}\",class=\"{}\"}} 1",
                    esc_label(h)
                );
            }
        }
    }
    for (path, t) in &sheet.stages {
        let lab = esc_label(path);
        let _ = writeln!(
            out,
            "ixp_stage_wall_seconds{{stage=\"{lab}\"}} {}",
            fmt_f64(t.wall_ns as f64 / 1e9)
        );
        let _ = writeln!(
            out,
            "ixp_stage_sim_seconds{{stage=\"{lab}\"}} {}",
            fmt_f64(t.sim_us as f64 / 1e6)
        );
        let _ = writeln!(out, "ixp_stage_calls{{stage=\"{lab}\"}} {}", t.calls);
    }
    for (key, w) in &sheet.workers {
        let (pool, worker) = key.rsplit_once("/worker").unwrap_or((key.as_str(), "0"));
        let _ = writeln!(
            out,
            "ixp_worker_items{{pool=\"{}\",worker=\"{}\"}} {}",
            esc_label(pool),
            esc_label(worker),
            w.items
        );
        let _ = writeln!(
            out,
            "ixp_worker_busy_seconds{{pool=\"{}\",worker=\"{}\"}} {}",
            esc_label(pool),
            esc_label(worker),
            fmt_f64(w.busy_ns as f64 / 1e9)
        );
    }
    out
}

/// Render the stage profile as an indented tree, nesting on `/` in stage
/// paths. `BTreeMap` ordering guarantees a parent prints before its
/// children, so a simple depth indent reconstructs the hierarchy.
pub fn stage_profile(sheet: &MetricSheet) -> String {
    let mut out = String::new();
    for (path, t) in &sheet.stages {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let _ = writeln!(
            out,
            "{:indent$}{leaf:<24} wall {:>9.3}s  sim {:>12.0}s  x{}",
            "",
            t.wall_ns as f64 / 1e9,
            t.sim_us as f64 / 1e6,
            t.calls,
            indent = depth * 2,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{LinkEvent, LinkKey, ProbeLedger, QuarantineNote};
    use crate::metrics::SheetRecorder;
    use crate::Recorder;

    fn sample_sheet() -> MetricSheet {
        let rec = SheetRecorder::new();
        rec.add("probes_sent", 7);
        rec.gauge("threads", 4.0);
        rec.observe("tslp_far_rtt_ms", 1.5);
        rec.observe("tslp_far_rtt_ms", 24.0);
        let mut l = ProbeLedger { sent: 4, answered: 3, ..ProbeLedger::default() };
        l.health = Some("clean".into());
        rec.ledger(LinkKey::new(0x0A000001, 0x0A000102), &l);
        rec.stage("vp/SIXP/campaign", 1_500_000_000, 3_000_000);
        rec.worker("campaign", 2, 9, 2_000_000);
        rec.into_sheet()
    }

    #[test]
    fn prometheus_text_exposes_all_families() {
        let text = prometheus_text(&sample_sheet());
        assert!(text.contains("# TYPE ixp_probes_sent_total counter"));
        assert!(text.contains("ixp_probes_sent_total 7"));
        assert!(text.contains("ixp_threads 4.0"));
        assert!(text.contains("ixp_tslp_far_rtt_ms_bucket{le=\"2.0\"}"));
        assert!(text.contains("ixp_tslp_far_rtt_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ixp_tslp_far_rtt_ms_sum 25.5"));
        assert!(text.contains("ixp_link_probes_sent_total{link=\"10.0.0.1-10.0.1.2\"} 4"));
        assert!(text.contains("ixp_link_health{link=\"10.0.0.1-10.0.1.2\",class=\"clean\"} 1"));
        assert!(text.contains("ixp_stage_sim_seconds{stage=\"vp/SIXP/campaign\"} 3.0"));
        assert!(text.contains("ixp_worker_items{pool=\"campaign\",worker=\"2\"} 9"));
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = RunManifest::new(0xDEAD, 42, 4, 1.25, sample_sheet());
        let parsed = RunManifest::from_json(&m.to_json()).expect("valid manifest");
        assert_eq!(parsed.version, MANIFEST_VERSION);
        assert_eq!(parsed.config_fingerprint, 0xDEAD);
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.sheet, m.sheet);
    }

    #[test]
    fn deterministic_json_strips_wall_fields() {
        let mut sheet = sample_sheet();
        sheet.ledgers.get_mut("10.0.0.1-10.0.1.2").unwrap().apply_event(
            &LinkEvent::Quarantined(QuarantineNote { worker: 3, message: "boom".into() }),
        );
        let a = RunManifest::new(1, 2, 3, 9.0, sheet.clone());
        let mut b = RunManifest::new(1, 2, 3, 4.0, sheet);
        b.sheet.stages.get_mut("vp/SIXP/campaign").unwrap().wall_ns = 77;
        b.sheet.workers.get_mut("campaign/worker2").unwrap().busy_ns = 1;
        if let Some(q) = &mut b.sheet.ledgers.get_mut("10.0.0.1-10.0.1.2").unwrap().quarantined {
            q.worker = 9;
        }
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert!(a.deterministic_json().contains("boom"), "panic text survives");
    }

    #[test]
    fn stage_profile_nests_by_slash() {
        let rec = SheetRecorder::new();
        rec.stage("vp", 0, 0);
        rec.stage("vp/SIXP", 0, 0);
        rec.stage("vp/SIXP/campaign", 0, 0);
        let text = stage_profile(&rec.into_sheet());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("vp "));
        assert!(lines[1].starts_with("  SIXP"));
        assert!(lines[2].starts_with("    campaign"));
    }
}
