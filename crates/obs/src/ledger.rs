//! Per-link probe bookkeeping.
//!
//! A campaign's hot path is the probe walk; its telemetry must not pay for
//! map lookups per probe. [`LinkRecorder`] is the hot-path sink — the
//! [`ProbeLedger`] counters as bare `Cell`s — created once per measured
//! link and folded into the worker's sheet when the link finishes.

use crate::Recorder;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;

/// Identity of a measured link: the raw IPv4 addresses of its near and far
/// interfaces (the same pair that keys `TslpTarget` and the integrity table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkKey {
    /// Near-side interface address, raw network-order u32.
    pub near: u32,
    /// Far-side interface address, raw network-order u32.
    pub far: u32,
}

impl LinkKey {
    /// Build from raw address words.
    pub fn new(near: u32, far: u32) -> LinkKey {
        LinkKey { near, far }
    }

    /// Stable text form, `near-far` in dotted quads. Used as the ledger map
    /// key and as the Prometheus `link` label.
    pub fn label(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for LinkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = |v: u32| [(v >> 24) & 255, (v >> 16) & 255, (v >> 8) & 255, v & 255];
        let n = q(self.near);
        let r = q(self.far);
        write!(f, "{}.{}.{}.{}-{}.{}.{}.{}", n[0], n[1], n[2], n[3], r[0], r[1], r[2], r[3])
    }
}

/// Which end of the link a probe targeted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum End {
    /// The near router (TTL expires before the link).
    Near,
    /// The far router (TTL expires after the link).
    Far,
}

/// One end's complete outcome for one TSLP round, reported as a single
/// event from inside the probe walk. Batching the whole retry loop into one
/// [`Recorder::probe`] call (instead of an event per attempt) keeps the
/// hot path at one dispatch per end per round.
#[derive(Clone, Copy, Debug)]
pub struct ProbeEvent {
    /// Which end of the link the round targeted.
    pub end: End,
    /// Transmissions made (the first probe plus `attempts - 1` retries).
    pub attempts: u32,
    /// How many of those transmissions an ICMP rate limiter ate.
    pub rate_limited: u32,
    /// RTT of the accepted answer in milliseconds; `None` when the round
    /// ended with no usable answer from this end.
    pub rtt_ms: Option<f64>,
}

/// A link-level event, reported by the campaign/assessment drivers.
#[derive(Clone, Debug)]
pub enum LinkEvent {
    /// The screening pass short-circuited the link at coarse fidelity.
    ScreenedOut,
    /// The link's series replayed from an on-disk checkpoint.
    CheckpointHit,
    /// The link's freshly measured series was persisted.
    CheckpointWrite,
    /// The health classifier's verdict token (`"clean"`, `"gappy"`, …).
    Health(&'static str),
    /// Congestion events confirmed at the operating threshold.
    Events(u64),
    /// Level shifts attributed to measurement artifacts (masked).
    Artifacts(u64),
    /// Forwarding-path changes observed in the link's TTL-ladder
    /// fingerprints (routing events under the measurement).
    PathChanges(u64),
    /// The worker processing this link panicked and was quarantined.
    Quarantined(QuarantineNote),
}

/// Who quarantined a link and why.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineNote {
    /// Pool worker index that ran the panicking closure (volatile: the
    /// work-stealing pool assigns items by arrival).
    pub worker: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

/// Everything the campaign knows about probing one link. Plain integers —
/// merging is field-wise and exactly order-independent.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProbeLedger {
    /// Probe transmissions (every attempt).
    pub sent: u64,
    /// Accepted answers.
    pub answered: u64,
    /// Rounds that ended with no usable answer from one end.
    pub timed_out: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Probes eaten by ICMP rate limiters.
    pub rate_limited: u64,
    /// TSLP rounds represented.
    pub rounds: u64,
    /// Screening short-circuited this link.
    pub screened_out: bool,
    /// Series replays from checkpoints.
    pub checkpoint_hits: u64,
    /// Series persisted to checkpoints.
    pub checkpoint_writes: u64,
    /// Health classification token, once assessed.
    pub health: Option<String>,
    /// Congestion events at the operating threshold.
    pub events: u64,
    /// Artifact-masked level shifts.
    pub artifact_events: u64,
    /// Forwarding-path changes seen in the TTL-ladder fingerprints.
    pub path_changes: u64,
    /// Set when the link's worker panicked and the link was quarantined.
    pub quarantined: Option<QuarantineNote>,
}

impl ProbeLedger {
    /// Apply one probe-outcome event.
    pub fn apply(&mut self, ev: ProbeEvent) {
        self.sent += ev.attempts as u64;
        self.retries += ev.attempts.saturating_sub(1) as u64;
        self.rate_limited += ev.rate_limited as u64;
        if ev.rtt_ms.is_some() {
            self.answered += 1;
        } else {
            self.timed_out += 1;
        }
    }

    /// Apply one link-level event.
    pub fn apply_event(&mut self, ev: &LinkEvent) {
        match ev {
            LinkEvent::ScreenedOut => self.screened_out = true,
            LinkEvent::CheckpointHit => self.checkpoint_hits += 1,
            LinkEvent::CheckpointWrite => self.checkpoint_writes += 1,
            LinkEvent::Health(tok) => self.health = Some((*tok).to_string()),
            LinkEvent::Events(n) => self.events += n,
            LinkEvent::Artifacts(n) => self.artifact_events += n,
            LinkEvent::PathChanges(n) => self.path_changes += n,
            LinkEvent::Quarantined(note) => self.quarantined = Some(note.clone()),
        }
    }

    /// Field-wise merge: counts sum, flags or, verdicts prefer `other`'s
    /// when present (the later drain carries the assessment).
    pub fn merge(&mut self, other: &ProbeLedger) {
        self.sent += other.sent;
        self.answered += other.answered;
        self.timed_out += other.timed_out;
        self.retries += other.retries;
        self.rate_limited += other.rate_limited;
        self.rounds += other.rounds;
        self.screened_out |= other.screened_out;
        self.checkpoint_hits += other.checkpoint_hits;
        self.checkpoint_writes += other.checkpoint_writes;
        if other.health.is_some() {
            self.health.clone_from(&other.health);
        }
        self.events += other.events;
        self.artifact_events += other.artifact_events;
        self.path_changes += other.path_changes;
        if other.quarantined.is_some() {
            self.quarantined.clone_from(&other.quarantined);
        }
    }

    /// Answered fraction of sent probes (`1.0` when nothing was sent).
    pub fn answer_rate(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.answered as f64 / self.sent as f64
        }
    }
}

/// The hot-path recorder for one link's campaign: the probe ledger's
/// counters as individual [`Cell`]s — no map lookups, no `RefCell` borrow
/// flag, each event a bare load/add/store. Fold it into a sheet-backed
/// recorder with [`LinkRecorder::fold_into`] when the link finishes.
///
/// Deliberately *not* here: RTT histograms. Every answered probe's RTT is
/// already retained in the link's series, so the campaign derives the
/// histograms with one sequential scan at fold time (see
/// `measure_link_rec`) instead of paying scattered bucket updates inside
/// the TSLP loop. The campaign bench (`BENCH_obs.json`) holds the whole
/// instrumented path to <3% over uninstrumented probing.
#[derive(Debug, Default)]
pub struct LinkRecorder {
    sent: Cell<u64>,
    answered: Cell<u64>,
    timed_out: Cell<u64>,
    retries: Cell<u64>,
    rate_limited: Cell<u64>,
    rounds: Cell<u64>,
    screened: Cell<bool>,
}

#[inline]
fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

impl LinkRecorder {
    /// A fresh recorder for one link.
    pub fn new() -> LinkRecorder {
        LinkRecorder::default()
    }

    /// Note TSLP rounds represented by the link's series.
    pub fn add_rounds(&self, rounds: u64) {
        self.rounds.set(self.rounds.get() + rounds);
    }

    /// Mark the link screened out.
    pub fn screened_out(&self) {
        self.screened.set(true);
    }

    /// Read out the accumulated ledger.
    pub fn ledger_snapshot(&self) -> ProbeLedger {
        ProbeLedger {
            sent: self.sent.get(),
            answered: self.answered.get(),
            timed_out: self.timed_out.get(),
            retries: self.retries.get(),
            rate_limited: self.rate_limited.get(),
            rounds: self.rounds.get(),
            screened_out: self.screened.get(),
            ..ProbeLedger::default()
        }
    }

    /// Fold this link's telemetry into `rec`: the ledger under `key` and
    /// the campaign-wide probe counters.
    pub fn fold_into<R: Recorder>(&self, rec: &R, key: LinkKey) {
        let ledger = self.ledger_snapshot();
        rec.ledger(key, &ledger);
        rec.add("probes_sent", ledger.sent);
        rec.add("probes_answered", ledger.answered);
        rec.add("probes_timed_out", ledger.timed_out);
        rec.add("probes_retried", ledger.retries);
        rec.add("probes_rate_limited", ledger.rate_limited);
        rec.add("probe_rounds", ledger.rounds);
        rec.add("links_measured", 1);
        if ledger.screened_out {
            rec.add("links_screened", 1);
        }
    }
}

impl Recorder for LinkRecorder {
    fn enabled(&self) -> bool {
        true
    }
    #[inline]
    fn probe(&self, ev: ProbeEvent) {
        self.sent.set(self.sent.get() + ev.attempts as u64);
        if ev.attempts > 1 {
            self.retries.set(self.retries.get() + (ev.attempts - 1) as u64);
        }
        if ev.rate_limited > 0 {
            self.rate_limited.set(self.rate_limited.get() + ev.rate_limited as u64);
        }
        if ev.rtt_ms.is_some() {
            bump(&self.answered);
        } else {
            bump(&self.timed_out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SheetRecorder;

    #[test]
    fn link_key_label_is_dotted() {
        let k = LinkKey::new(0x0A000001, 0x0A000102);
        assert_eq!(k.label(), "10.0.0.1-10.0.1.2");
    }

    #[test]
    fn ledger_applies_and_merges() {
        let mut a = ProbeLedger::default();
        a.apply(ProbeEvent { end: End::Near, attempts: 1, rate_limited: 0, rtt_ms: Some(1.0) });
        let mut b = ProbeLedger::default();
        b.apply(ProbeEvent { end: End::Far, attempts: 1, rate_limited: 1, rtt_ms: None });
        b.apply_event(&LinkEvent::Health("gappy"));
        b.apply_event(&LinkEvent::PathChanges(2));
        a.merge(&b);
        assert_eq!((a.sent, a.answered, a.rate_limited, a.timed_out), (2, 1, 1, 1));
        assert_eq!(a.health.as_deref(), Some("gappy"));
        assert_eq!(a.path_changes, 2);
        assert_eq!(a.answer_rate(), 0.5);
    }

    #[test]
    fn link_recorder_folds_counters() {
        let lr = LinkRecorder::new();
        lr.probe(ProbeEvent { end: End::Near, attempts: 1, rate_limited: 0, rtt_ms: Some(0.8) });
        lr.probe(ProbeEvent { end: End::Far, attempts: 2, rate_limited: 0, rtt_ms: Some(12.0) });
        lr.add_rounds(1);
        let sink = SheetRecorder::new();
        lr.fold_into(&sink, LinkKey::new(1, 2));
        let sheet = sink.into_sheet();
        assert_eq!(sheet.counter("probes_sent"), 3);
        assert_eq!(sheet.counter("probes_answered"), 2);
        assert_eq!(sheet.counter("probes_retried"), 1);
        assert_eq!(sheet.ledgers["0.0.0.1-0.0.0.2"].sent, 3);
    }
}
