//! RAII stage timers.
//!
//! A [`StageSpan`] measures one pipeline stage — substrate build, bdrmap
//! sweep, TSLP campaign, detection, report render — and folds `(wall_ns,
//! sim_us)` into the recorder's stage profile when dropped. Stage paths are
//! slash-separated (`"vp/SIXP/campaign"`); the exporters nest the profile by
//! splitting on `/`. Spans may close repeatedly under one path (per-link
//! loss windows, per-snapshot bdrmap passes): timings merge by summation,
//! with `calls` counting the closures.
//!
//! Wall time is volatile run to run and is stripped by
//! [`crate::RunManifest::deterministic_json`]; simulated time is part of the
//! deterministic snapshot.

use crate::Recorder;
use std::time::Instant;

/// A running stage timer. Construct with [`StageSpan::enter`]; the timing is
/// recorded on drop. Against a disabled recorder the span never reads the
/// wall clock and the drop records nothing.
#[derive(Debug)]
pub struct StageSpan<'a, R: Recorder> {
    rec: &'a R,
    path: String,
    started: Option<Instant>,
    sim_us: u64,
}

impl<'a, R: Recorder> StageSpan<'a, R> {
    /// Open a span under `path`.
    pub fn enter(rec: &'a R, path: impl Into<String>) -> StageSpan<'a, R> {
        let started = rec.enabled().then(Instant::now);
        StageSpan { rec, path: path.into(), started, sim_us: 0 }
    }

    /// Attribute `sim_us` microseconds of simulated time to the stage (e.g.
    /// the campaign window a stage replayed).
    pub fn add_sim_us(&mut self, sim_us: u64) {
        self.sim_us += sim_us;
    }
}

impl<R: Recorder> Drop for StageSpan<'_, R> {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            let wall_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.rec.stage(&self.path, wall_ns, self.sim_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SheetRecorder;
    use crate::NoopRecorder;

    #[test]
    fn span_folds_on_drop() {
        let rec = SheetRecorder::new();
        {
            let mut s = StageSpan::enter(&rec, "vp/SIXP/campaign");
            s.add_sim_us(42);
        }
        {
            let mut s = StageSpan::enter(&rec, "vp/SIXP/campaign");
            s.add_sim_us(8);
        }
        let sheet = rec.into_sheet();
        let t = &sheet.stages["vp/SIXP/campaign"];
        assert_eq!(t.sim_us, 50);
        assert_eq!(t.calls, 2);
    }

    #[test]
    fn noop_span_records_nothing() {
        let rec = NoopRecorder;
        let s = StageSpan::enter(&rec, "x");
        assert!(s.started.is_none());
    }
}
