//! Named counters, gauges, and log-bucketed histograms, as mergeable sheets.
//!
//! The design is merge-at-drain: a pool worker never touches shared state
//! per sample. It owns a plain [`MetricSheet`] (or the per-link
//! [`crate::LinkRecorder`], which is even cheaper) and folds it into the
//! shared [`MetricsRegistry`] once, when the worker retires. Every merge
//! operation is commutative and associative over integers, so the folded
//! totals are independent of drain order and worker count.

use crate::ledger::ProbeLedger;
use crate::Recorder;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Smallest finite bucket boundary exponent: the first finite bucket covers
/// `[2^MIN_EXP, 2^(MIN_EXP+1))`. 2⁻¹⁰ ms ≈ 1 µs — below any simulated RTT.
const MIN_EXP: i32 = -10;
/// One past the largest finite bucket: values ≥ `2^MAX_EXP` ms (≈ 17.5 min)
/// land in the overflow bucket.
const MAX_EXP: i32 = 20;
/// Total buckets: underflow + one per exponent + overflow.
pub(crate) const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize + 2;

/// A log₂-bucketed histogram of non-negative samples (milliseconds by
/// convention). Bucket 0 is the underflow bucket (`v < 2^MIN_EXP`, including
/// zero), bucket `i` (1 ≤ i ≤ 30) covers `[2^(MIN_EXP+i-1), 2^(MIN_EXP+i))`,
/// and the last bucket is overflow. The sum is kept in saturating
/// fixed-point micro-units so that merging is exactly associative and
/// commutative — `f64` addition is not — which the property tests pin down.
/// NaN samples are dropped (they carry no magnitude to bucket).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket sample counts (`BUCKETS` entries).
    pub counts: Vec<u64>,
    /// Total recorded samples.
    pub count: u64,
    /// Saturating sum of samples in micro-units (`round(v × 1000)`).
    pub sum_micros: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum_micros: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index for a sample. Exponent extraction reads the IEEE-754
    /// bits directly — no libm, so bucketing is identical on every platform.
    #[inline]
    pub fn bucket_of(v: f64) -> Option<usize> {
        if v.is_nan() {
            return None;
        }
        if v < min_bound() {
            return Some(0);
        }
        if v >= max_bound() {
            return Some(BUCKETS - 1);
        }
        // v is normal and within [2^MIN_EXP, 2^MAX_EXP): the biased IEEE
        // exponent is exactly floor(log2 v) + 1023.
        let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        Some((exp - MIN_EXP + 1) as usize)
    }

    /// Upper bound (exclusive) of bucket `i`; `f64::INFINITY` for overflow.
    pub fn upper_bound(i: usize) -> f64 {
        if i + 1 >= BUCKETS {
            f64::INFINITY
        } else {
            exp2(MIN_EXP + i as i32)
        }
    }

    /// All finite bucket boundaries, in order (the Prometheus `le` labels
    /// minus the implicit `+Inf`).
    pub fn boundaries() -> Vec<f64> {
        (0..BUCKETS - 1).map(Histogram::upper_bound).collect()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        let Some(b) = Histogram::bucket_of(v) else { return };
        self.counts[b] += 1;
        self.count += 1;
        // Half-up rounding spelled as floor(x + 0.5): unlike `f64::round`
        // this stays branch-free inline code on every target (no libm
        // fallback), and the hot path runs once per answered probe.
        self.sum_micros = self.sum_micros.saturating_add((v.max(0.0) * 1000.0 + 0.5) as u64);
    }

    /// Fold another histogram in. Commutative and associative exactly.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
    }

    /// Sum of samples in the recording unit (milliseconds by convention).
    pub fn sum(&self) -> f64 {
        self.sum_micros as f64 / 1000.0
    }

    /// Mean sample, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }
}

fn exp2(e: i32) -> f64 {
    // Exact for the exponent range used here (|e| ≤ 20 < 1023).
    f64::from_bits(((1023 + e) as u64) << 52)
}

fn min_bound() -> f64 {
    exp2(MIN_EXP)
}

fn max_bound() -> f64 {
    exp2(MAX_EXP)
}

/// Accumulated timing of one pipeline stage. `wall_ns` is a wall-clock field
/// (volatile run to run); `sim_us` and `calls` are deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Wall time spent in the stage, nanoseconds (volatile).
    pub wall_ns: u64,
    /// Simulated time the stage covered, microseconds.
    pub sim_us: u64,
    /// Number of span closures folded in.
    pub calls: u64,
}

/// One pool worker's lifetime stats. Entirely volatile: the work-stealing
/// pool hands items to whichever worker claims them first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStat {
    /// Items the worker processed.
    pub items: u64,
    /// Wall time the worker spent inside item closures, nanoseconds.
    pub busy_ns: u64,
}

/// A plain, mergeable sheet of everything a recorder can absorb. `BTreeMap`
/// keys keep iteration — and therefore every export — deterministically
/// ordered.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricSheet {
    /// Monotonic counters. Merge: sum.
    pub counters: BTreeMap<String, u64>,
    /// Gauges. Merge: max (order-independent; NaN never stored).
    pub gauges: BTreeMap<String, f64>,
    /// Log-bucketed histograms. Merge: bucket-wise sum.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-link probe ledgers, keyed by the link label. Merge: field-wise.
    pub ledgers: BTreeMap<String, ProbeLedger>,
    /// Hierarchical stage profile, keyed by slash path. Merge: field-wise sum.
    pub stages: BTreeMap<String, StageTiming>,
    /// Per-pool-worker stats, keyed by `pool/worker<N>`. Merge: sum.
    pub workers: BTreeMap<String, WorkerStat>,
}

impl MetricSheet {
    /// An empty sheet.
    pub fn new() -> MetricSheet {
        MetricSheet::default()
    }

    /// Bump a counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        if delta > 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Set a gauge (max-merged later; NaN is ignored).
    pub fn gauge(&mut self, name: &str, v: f64) {
        if !v.is_nan() {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_string()).or_default().record(v);
    }

    /// Fold a pre-aggregated histogram in.
    pub fn merge_hist(&mut self, name: &str, h: &Histogram) {
        self.histograms.entry(name.to_string()).or_default().merge(h);
    }

    /// Fold a per-link ledger in.
    pub fn merge_ledger(&mut self, key: &str, l: &ProbeLedger) {
        self.ledgers.entry(key.to_string()).or_default().merge(l);
    }

    /// Fold one stage timing in.
    pub fn stage(&mut self, path: &str, wall_ns: u64, sim_us: u64) {
        let t = self.stages.entry(path.to_string()).or_default();
        t.wall_ns += wall_ns;
        t.sim_us += sim_us;
        t.calls += 1;
    }

    /// Fold one worker stat in.
    pub fn worker(&mut self, pool: &str, worker: usize, items: u64, busy_ns: u64) {
        let s = self.workers.entry(format!("{pool}/worker{worker}")).or_default();
        s.items += items;
        s.busy_ns += busy_ns;
    }

    /// Fold a whole sheet in. Commutative/associative per field class
    /// (counters sum, gauges max, histograms/ledgers/stages field-wise).
    pub fn merge(&mut self, other: &MetricSheet) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *g = g.max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, l) in &other.ledgers {
            self.ledgers.entry(k.clone()).or_default().merge(l);
        }
        for (k, t) in &other.stages {
            let s = self.stages.entry(k.clone()).or_default();
            s.wall_ns += t.wall_ns;
            s.sim_us += t.sim_us;
            s.calls += t.calls;
        }
        for (k, w) in &other.workers {
            let s = self.workers.entry(k.clone()).or_default();
            s.items += w.items;
            s.busy_ns += w.busy_ns;
        }
    }

    /// Counter value, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A compact one-line summary (the `online_monitor` progress line).
    pub fn one_line(&self) -> String {
        let mut parts: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
        for (k, g) in &self.gauges {
            parts.push(format!("{k}={g:.1}"));
        }
        parts.join(" ")
    }
}

/// A worker-local recorder: a [`MetricSheet`] behind a `RefCell`. Not `Sync`
/// by design — it belongs to exactly one worker, records without locking,
/// and is folded into the shared registry at drain.
#[derive(Debug, Default)]
pub struct SheetRecorder {
    sheet: RefCell<MetricSheet>,
}

impl SheetRecorder {
    /// An empty local sheet.
    pub fn new() -> SheetRecorder {
        SheetRecorder::default()
    }

    /// Take the accumulated sheet out.
    pub fn into_sheet(self) -> MetricSheet {
        self.sheet.into_inner()
    }

    /// Take the accumulated sheet out through a shared reference, leaving an
    /// empty sheet behind (the drop-time drain hook).
    pub fn take_sheet(&self) -> MetricSheet {
        std::mem::take(&mut *self.sheet.borrow_mut())
    }
}

impl Recorder for SheetRecorder {
    fn enabled(&self) -> bool {
        true
    }
    fn add(&self, name: &str, delta: u64) {
        self.sheet.borrow_mut().add(name, delta);
    }
    fn gauge(&self, name: &str, v: f64) {
        self.sheet.borrow_mut().gauge(name, v);
    }
    fn observe(&self, name: &str, v: f64) {
        self.sheet.borrow_mut().observe(name, v);
    }
    fn merge_hist(&self, name: &str, h: &Histogram) {
        self.sheet.borrow_mut().merge_hist(name, h);
    }
    fn ledger(&self, key: crate::LinkKey, l: &ProbeLedger) {
        self.sheet.borrow_mut().merge_ledger(&key.label(), l);
    }
    fn link_event(&self, key: crate::LinkKey, ev: crate::LinkEvent) {
        let mut s = self.sheet.borrow_mut();
        let led = s.ledgers.entry(key.label()).or_default();
        led.apply_event(&ev);
    }
    fn stage(&self, path: &str, wall_ns: u64, sim_us: u64) {
        self.sheet.borrow_mut().stage(path, wall_ns, sim_us);
    }
    fn worker(&self, pool: &str, worker: usize, items: u64, busy_ns: u64) {
        self.sheet.borrow_mut().worker(pool, worker, items, busy_ns);
    }
    fn fold(&self, sheet: &MetricSheet) {
        self.sheet.borrow_mut().merge(sheet);
    }
}

/// The shared sink: a [`MetricSheet`] behind a `parking_lot::Mutex`. Used
/// directly as a [`Recorder`] by sequential/coarse-grained call sites (one
/// lock per link or per stage, never per probe) and as the drain target for
/// worker-local sheets.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricSheet>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Fold a finished worker sheet in (the drain step).
    pub fn drain(&self, sheet: &MetricSheet) {
        self.inner.lock().merge(sheet);
    }

    /// Clone the current contents.
    pub fn snapshot(&self) -> MetricSheet {
        self.inner.lock().clone()
    }
}

impl Recorder for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }
    fn add(&self, name: &str, delta: u64) {
        self.inner.lock().add(name, delta);
    }
    fn gauge(&self, name: &str, v: f64) {
        self.inner.lock().gauge(name, v);
    }
    fn observe(&self, name: &str, v: f64) {
        self.inner.lock().observe(name, v);
    }
    fn merge_hist(&self, name: &str, h: &Histogram) {
        self.inner.lock().merge_hist(name, h);
    }
    fn ledger(&self, key: crate::LinkKey, l: &ProbeLedger) {
        self.inner.lock().merge_ledger(&key.label(), l);
    }
    fn link_event(&self, key: crate::LinkKey, ev: crate::LinkEvent) {
        let mut s = self.inner.lock();
        s.ledgers.entry(key.label()).or_default().apply_event(&ev);
    }
    fn stage(&self, path: &str, wall_ns: u64, sim_us: u64) {
        self.inner.lock().stage(path, wall_ns, sim_us);
    }
    fn worker(&self, pool: &str, worker: usize, items: u64, busy_ns: u64) {
        self.inner.lock().worker(pool, worker, items, busy_ns);
    }
    fn fold(&self, sheet: &MetricSheet) {
        self.drain(sheet);
    }
}

/// A wall-clock event-rate meter for live gauges (ingest samples/s,
/// verdict-index read QPS). `mark` is one relaxed atomic add — safe to call
/// from any thread at full ingest rate; `take_rate` closes the current
/// window and starts the next, so periodic gauge publication sees the rate
/// over the interval since the last publication. Rates are wall-clock and
/// therefore volatile run to run; they are for live dashboards, never for
/// deterministic output.
#[derive(Debug)]
pub struct RateMeter {
    total: std::sync::atomic::AtomicU64,
    window: Mutex<(std::time::Instant, u64)>,
}

impl Default for RateMeter {
    fn default() -> Self {
        RateMeter::new()
    }
}

impl RateMeter {
    /// A meter whose first window starts now.
    pub fn new() -> RateMeter {
        RateMeter {
            total: std::sync::atomic::AtomicU64::new(0),
            window: Mutex::new((std::time::Instant::now(), 0)),
        }
    }

    /// Count `n` events (relaxed; aggregate only).
    #[inline]
    pub fn mark(&self, n: u64) {
        self.total.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Events counted since construction.
    pub fn total(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Events/second over the current window, without closing it.
    pub fn rate(&self) -> f64 {
        let (start, base) = *self.window.lock();
        let dt = start.elapsed().as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        (self.total().saturating_sub(base)) as f64 / dt
    }

    /// Events/second over the current window, then start a new window.
    pub fn take_rate(&self) -> f64 {
        let mut w = self.window.lock();
        let dt = w.0.elapsed().as_secs_f64();
        let now_total = self.total();
        let r = if dt <= 0.0 { 0.0 } else { (now_total.saturating_sub(w.1)) as f64 / dt };
        *w = (std::time::Instant::now(), now_total);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0.0), Some(0));
        assert_eq!(Histogram::bucket_of(-3.0), Some(0));
        assert_eq!(Histogram::bucket_of(f64::NAN), None);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), Some(BUCKETS - 1));
        // 1.0 ms sits in the bucket whose bounds are [1, 2).
        let b = Histogram::bucket_of(1.0).unwrap();
        assert_eq!(Histogram::upper_bound(b), 2.0);
        assert_eq!(Histogram::upper_bound(b - 1), 1.0);
        // Exactly on a boundary goes to the upper bucket.
        assert_eq!(Histogram::bucket_of(2.0), Some(b + 1));
        assert_eq!(Histogram::bucket_of(1.999_999), Some(b));
        // Giant values overflow.
        assert_eq!(Histogram::bucket_of(1e9), Some(BUCKETS - 1));
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(0.5);
        a.record(3.0);
        b.record(3.5);
        b.record(f64::NAN); // dropped
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum_micros, 500 + 3000 + 3500);
        assert!((a.mean() - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sheet_merge_is_order_independent() {
        let mut a = MetricSheet::new();
        a.add("probes", 3);
        a.gauge("threads", 4.0);
        a.observe("rtt", 2.0);
        let mut b = MetricSheet::new();
        b.add("probes", 5);
        b.gauge("threads", 2.0);
        b.observe("rtt", 9.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("probes"), 8);
        assert_eq!(ab.gauges["threads"], 4.0);
        assert_eq!(ab.histograms["rtt"].count, 2);
    }

    #[test]
    fn rate_meter_counts_and_windows() {
        let m = RateMeter::new();
        assert_eq!(m.total(), 0);
        m.mark(5);
        m.mark(7);
        assert_eq!(m.total(), 12);
        assert!(m.rate() >= 0.0);
        let _ = m.take_rate();
        // New window: no events yet, rate near zero regardless of history.
        m.mark(3);
        assert_eq!(m.total(), 15);
    }

    #[test]
    fn registry_drains_local_sheets() {
        let reg = MetricsRegistry::new();
        let local = SheetRecorder::new();
        local.add("items", 2);
        local.stage("vp/campaign", 10, 20);
        reg.drain(&local.into_sheet());
        reg.add("items", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("items"), 3);
        assert_eq!(snap.stages["vp/campaign"].sim_us, 20);
        assert_eq!(snap.stages["vp/campaign"].calls, 1);
    }
}
