//! # ixp-obs — campaign telemetry with a zero-overhead-when-off recorder
//!
//! The paper's TSLP campaigns ran unattended for thirteen months; probing
//! pathologies (ICMP rate limiting, address churn, VP outages — §3.2/§5)
//! were only diagnosed after the fact. This crate gives the pipeline
//! first-class self-measurement so an operator can see what the campaign,
//! detector, and worker pool are doing *while they run*:
//!
//! - [`Recorder`] — the single instrumentation gateway. Every probe walk,
//!   pool worker, detector pass, and pipeline stage reports through it. The
//!   default method bodies are empty, so the uninstrumented path
//!   ([`NoopRecorder`]) monomorphizes to nothing and stays bit-identical to
//!   the never-instrumented code (gated by `benches/obs.rs`).
//! - [`MetricsRegistry`] / [`MetricSheet`] — named counters, gauges, and
//!   log-bucketed [`Histogram`]s. Sheets are plain mergeable values: each
//!   pool worker owns a local sheet and folds it into the shared registry
//!   once at drain, keeping the hot path contention-free.
//! - [`ProbeLedger`] / [`LinkRecorder`] — per-link probe bookkeeping
//!   (sent/answered/timed-out, retries, rate-limit drops, checkpoint hits,
//!   quarantines) accumulated in plain fields, no map lookups per probe.
//! - [`StageSpan`] — RAII wall-time + sim-time timers folding into a
//!   hierarchical (slash-path) stage profile.
//! - [`export`] — Prometheus text exposition and the versioned
//!   [`RunManifest`] JSON snapshot written by `full_campaign --metrics-out`.
//!
//! Determinism contract (tested in `ixp-study/tests/telemetry.rs`): with the
//! no-op recorder, outputs are bit-identical to the uninstrumented build; with
//! a live recorder, counters, ledgers, histograms, and per-stage sim-time are
//! identical at *any* thread count, and the whole snapshot is identical run
//! to run modulo wall-clock fields (`RunManifest::deterministic_json`).

#![warn(missing_docs)]

pub mod export;
pub mod ledger;
pub mod metrics;
pub mod rss;
pub mod span;
pub mod trace;

pub use export::{
    prometheus_text, stage_profile, ModeTransition, ResumeSummary, RunManifest, MANIFEST_VERSION,
};
pub use ledger::{End, LinkEvent, LinkKey, LinkRecorder, ProbeEvent, ProbeLedger, QuarantineNote};
pub use metrics::{
    Histogram, MetricSheet, MetricsRegistry, RateMeter, SheetRecorder, StageTiming, WorkerStat,
};
pub use rss::{peak_rss_mb, reset_peak_rss};
pub use span::StageSpan;
pub use trace::{
    health_class_name, parse_dump, recovery_name, FlightRecorder, TraceDump, TraceEvent, TraceKind,
    NO_LINK, TRACE_DUMP_VERSION,
};

/// The instrumentation gateway: everything the pipeline reports goes through
/// one of these methods. All methods have empty default bodies, so a type
/// only implements what it can absorb, and the no-op implementation compiles
/// away entirely — callers may freely sprinkle calls on hot paths as long as
/// any *argument preparation* is gated on [`Recorder::enabled`].
pub trait Recorder {
    /// Is this recorder live? `false` (the default) lets instrumented code
    /// skip building expensive arguments (wall-clock reads, labels).
    fn enabled(&self) -> bool {
        false
    }
    /// Bump a named monotonic counter.
    fn add(&self, _name: &str, _delta: u64) {}
    /// Set a named gauge. Gauges fold by `max` at merge so the result is
    /// independent of worker drain order.
    fn gauge(&self, _name: &str, _value: f64) {}
    /// Record one sample into a named log-bucketed histogram.
    fn observe(&self, _name: &str, _value: f64) {}
    /// Fold a pre-aggregated histogram into the named histogram.
    fn merge_hist(&self, _name: &str, _hist: &Histogram) {}
    /// Record one probe-level event (hot path; see [`LinkRecorder`]).
    fn probe(&self, _ev: ProbeEvent) {}
    /// Fold a finished per-link ledger in.
    fn ledger(&self, _key: LinkKey, _ledger: &ProbeLedger) {}
    /// Record a link-level event (screening, checkpoint, quarantine, …).
    fn link_event(&self, _key: LinkKey, _ev: LinkEvent) {}
    /// Fold one stage timing (slash-separated `path` nests the profile).
    fn stage(&self, _path: &str, _wall_ns: u64, _sim_us: u64) {}
    /// Fold one pool worker's per-run stats (volatile: scheduling-dependent).
    fn worker(&self, _pool: &str, _worker: usize, _items: u64, _busy_ns: u64) {}
    /// Fold a whole worker-local sheet in (the drain step).
    fn fold(&self, _sheet: &MetricSheet) {}
    /// Record one structured flight-recorder event (hot path: callers pass
    /// a `Copy` [`TraceEvent`] built from values already at hand, so the
    /// no-op body costs nothing and a live [`FlightRecorder`] costs one
    /// uncontended lane push).
    fn trace(&self, _ev: TraceEvent) {}
}

/// The recorder that records nothing. Every method keeps its empty default
/// body; behind monomorphization the instrumented functions collapse to
/// their uninstrumented selves.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl<R: Recorder + ?Sized> Recorder for &R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn add(&self, name: &str, delta: u64) {
        (**self).add(name, delta)
    }
    fn gauge(&self, name: &str, value: f64) {
        (**self).gauge(name, value)
    }
    fn observe(&self, name: &str, value: f64) {
        (**self).observe(name, value)
    }
    fn merge_hist(&self, name: &str, hist: &Histogram) {
        (**self).merge_hist(name, hist)
    }
    fn probe(&self, ev: ProbeEvent) {
        (**self).probe(ev)
    }
    fn ledger(&self, key: LinkKey, ledger: &ProbeLedger) {
        (**self).ledger(key, ledger)
    }
    fn link_event(&self, key: LinkKey, ev: LinkEvent) {
        (**self).link_event(key, ev)
    }
    fn stage(&self, path: &str, wall_ns: u64, sim_us: u64) {
        (**self).stage(path, wall_ns, sim_us)
    }
    fn worker(&self, pool: &str, worker: usize, items: u64, busy_ns: u64) {
        (**self).worker(pool, worker, items, busy_ns)
    }
    fn fold(&self, sheet: &MetricSheet) {
        (**self).fold(sheet)
    }
    fn trace(&self, ev: TraceEvent) {
        (**self).trace(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.add("x", 1);
        r.observe("y", 2.0);
        r.stage("a/b", 3, 4);
        // A reference forwards.
        assert!(!(&r).enabled());
    }
}
