//! The flight recorder: fixed-capacity trace rings and versioned JSONL
//! black-box dumps.
//!
//! Every exceptional step a pipeline takes — a shed or rejected sample, a
//! healed reorder, a health-class transition, a mask application, an online
//! or batch changepoint, a checkpoint write/restore, a worker panic and its
//! recovery — can be reported as a [`TraceEvent`] through
//! [`Recorder::trace`]. The default trait body is empty, so the
//! uninstrumented path ([`crate::NoopRecorder`]) still monomorphizes to
//! nothing; a live [`FlightRecorder`] appends the event to a per-lane ring
//! of fixed capacity, stamping a per-lane monotone sequence number.
//!
//! ## Memory model
//!
//! One lane per shard/worker, each a preallocated `Vec<TraceEvent>` used as
//! an overwrite ring: pushing into a full ring evicts the oldest event and
//! bumps the lane's `dropped` count — memory is bounded at
//! `lanes × capacity × size_of::<TraceEvent>()` forever, and the hot path
//! never allocates. Lanes are mutex-guarded, but a lane is only ever
//! touched by the worker that owns its shard (plus the dumper), so the
//! lock is uncontended in steady state.
//!
//! ## Dump format
//!
//! [`FlightRecorder::dump_jsonl`] serializes the merged rings to JSON
//! Lines: a header object (`format`/`version`/`reason`/`lanes`/`dropped`)
//! followed by one event object per line, sorted by `(round, shard, seq)`
//! so interleaved lanes read as one timeline. [`parse_dump`] is the
//! inverse; `examples/forensics.rs` replays dumps into per-link timelines.

use crate::Recorder;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Current dump format version (the header's `version` field).
pub const TRACE_DUMP_VERSION: u32 = 1;

/// What happened. The payload fields `a`, `b`, and `v` of the carrying
/// [`TraceEvent`] are interpreted per kind — see each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Admission control shed this sample before workers started.
    /// `a` = sequence number.
    SampleShed,
    /// Sample refused at the door (unknown link id or reserved sequence).
    /// `a` = sequence number.
    SampleRejected,
    /// The link's gate saw a duplicate of an already-delivered sequence.
    /// `a` = sequence number.
    SampleDuplicate,
    /// The link's gate saw an ancient sequence replay. `a` = next expected
    /// sequence at the time.
    SampleStale,
    /// Sequence numbers abandoned because the reorder window slid past
    /// them. `a` = count dropped in this admission.
    SampleDropped,
    /// Out-of-order samples healed into order via the reorder buffer.
    /// `a` = count delivered out of arrival order in this admission.
    ReorderHealed,
    /// The link's incremental health class changed at a window boundary.
    /// `a` = previous class token, `b` = new class token (see
    /// [`health_class_name`]).
    HealthChanged,
    /// A causal path-change mask suppressed an online upshift alarm.
    /// `a` = round of the triggering path change, `b` = rounds elapsed
    /// since it.
    MaskApplied,
    /// The online detector raised an (unmasked) upshift alarm.
    /// `a` = round of the last path change (`u64::MAX` = never),
    /// `v` = baseline level before the shift (ms).
    OnlineUpshift,
    /// The online detector returned to baseline. `v` = baseline (ms).
    OnlineDownshift,
    /// The batch detector accepted a changepoint. `a` = sample index,
    /// `v` = bootstrap confidence.
    BatchChangepoint,
    /// A shard checkpoint blob was written. `a` = links encoded.
    CheckpointWrite,
    /// A shard restored from its checkpoint blob. `a` = recovery outcome
    /// token (see [`recovery_name`]).
    CheckpointRestore,
    /// Checkpointed samples replayed through a restored shard.
    /// `a` = items replayed.
    CheckpointReplay,
    /// A shard worker panicked mid-batch. `a` = restart count so far.
    WorkerPanic,
    /// The supervisor restored a panicked shard and is retrying.
    ShardRestore,
    /// A second panic quarantined the shard for this batch.
    ShardQuarantine,
    /// The service mode flipped. `a` = 0 for Healthy, 1 for Degraded.
    ModeChange,
}

/// One structured trace record. `Copy` and fixed-size: pushing one into a
/// ring moves 56 bytes and allocates nothing.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Per-lane monotone sequence number, stamped by the ring at push.
    pub seq: u64,
    /// Sim-time round (or batch index) the event belongs to.
    pub round: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Lane the event routes to (shard id, or worker id for batch stages).
    pub shard: u32,
    /// Link the event concerns (`u32::MAX` = not link-scoped).
    pub link: u32,
    /// First kind-specific payload word (see [`TraceKind`]).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
    /// Kind-specific measure (levels, confidences; `0.0` when unused).
    pub v: f64,
}

/// Sentinel for [`TraceEvent::link`] on events that are not link-scoped.
pub const NO_LINK: u32 = u32::MAX;

impl TraceEvent {
    /// A fresh event with empty payload; the ring stamps `seq`.
    pub fn new(kind: TraceKind, round: u64, shard: u32, link: u32) -> TraceEvent {
        TraceEvent { seq: 0, round, kind, shard, link, a: 0, b: 0, v: 0.0 }
    }

    /// Attach the first payload word.
    pub fn a(mut self, a: u64) -> TraceEvent {
        self.a = a;
        self
    }

    /// Attach the second payload word.
    pub fn b(mut self, b: u64) -> TraceEvent {
        self.b = b;
        self
    }

    /// Attach the measure.
    pub fn v(mut self, v: f64) -> TraceEvent {
        self.v = v;
        self
    }
}

/// One lane's fixed-capacity overwrite ring.
#[derive(Debug)]
struct TraceRing {
    /// Preallocated storage; never grows past `cap`.
    buf: Vec<TraceEvent>,
    /// Next write position once the ring is full.
    head: usize,
    /// Events evicted because the ring was full.
    dropped: u64,
    /// Next sequence number to stamp.
    next_seq: u64,
}

impl TraceRing {
    fn new(cap: usize) -> TraceRing {
        TraceRing { buf: Vec::with_capacity(cap), head: 0, dropped: 0, next_seq: 0 }
    }

    fn push(&mut self, mut ev: TraceEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len().max(1);
            self.dropped += 1;
        }
    }

    /// Events oldest-first.
    fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// A live flight recorder: one bounded trace ring per lane, routed by
/// [`TraceEvent::shard`]. Implements [`Recorder`] so it can stand wherever
/// a recorder is accepted; only [`Recorder::trace`] stores anything — the
/// metric/ledger methods keep their empty defaults, so a flight recorder
/// can be composed alongside a metrics registry without double-counting.
#[derive(Debug)]
pub struct FlightRecorder {
    lanes: Vec<Mutex<TraceRing>>,
}

impl FlightRecorder {
    /// `lanes` rings of `capacity` events each. Lane count is typically the
    /// shard/worker count; capacity bounds memory per lane forever.
    pub fn new(lanes: usize, capacity: usize) -> FlightRecorder {
        let lanes = lanes.max(1);
        FlightRecorder {
            lanes: (0..lanes).map(|_| Mutex::new(TraceRing::new(capacity.max(1)))).collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Total events evicted across all lanes (rings that wrapped).
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.lock().dropped).sum()
    }

    /// Total events currently retained across all lanes.
    pub fn retained(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().buf.len()).sum()
    }

    /// Merge every lane into one `(round, shard, seq)`-sorted timeline.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> =
            self.lanes.iter().flat_map(|l| l.lock().ordered()).collect();
        all.sort_by_key(|e| (e.round, e.shard, e.seq));
        all
    }

    /// Serialize the merged rings as a versioned JSONL black-box bundle:
    /// one header line, then one event per line in timeline order. The
    /// rings are left intact (a dump is a read, not a drain).
    pub fn dump_jsonl(&self, reason: &str) -> Vec<u8> {
        let events = self.snapshot();
        let header = DumpHeader {
            format: "tslp-trace".to_string(),
            version: TRACE_DUMP_VERSION,
            reason: reason.to_string(),
            lanes: self.lanes.len(),
            dropped: self.dropped(),
            events: events.len(),
        };
        let mut out = serde_json::to_string(&header).expect("header serializes").into_bytes();
        out.push(b'\n');
        for ev in &events {
            out.extend_from_slice(serde_json::to_string(ev).expect("event serializes").as_bytes());
            out.push(b'\n');
        }
        out
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn trace(&self, ev: TraceEvent) {
        self.lanes[ev.shard as usize % self.lanes.len()].lock().push(ev);
    }
}

/// The first line of a dump.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct DumpHeader {
    /// Always `"tslp-trace"`.
    format: String,
    /// [`TRACE_DUMP_VERSION`] at write time.
    version: u32,
    /// Why the dump was taken (incident description).
    reason: String,
    /// Lane count at write time.
    lanes: usize,
    /// Events the rings had evicted before the dump.
    dropped: u64,
    /// Event lines that follow.
    events: usize,
}

/// A parsed black-box bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceDump {
    /// Dump format version.
    pub version: u32,
    /// Why the dump was taken.
    pub reason: String,
    /// Events evicted from the rings before the dump (timeline holes).
    pub dropped: u64,
    /// The merged timeline, `(round, shard, seq)`-sorted at write time.
    pub events: Vec<TraceEvent>,
}

/// Parse a [`FlightRecorder::dump_jsonl`] bundle back into a timeline.
/// Rejects bundles with a bad header or a different major format; a
/// truncated event tail yields an error naming the offending line.
pub fn parse_dump(bytes: &[u8]) -> Result<TraceDump, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("dump is not UTF-8: {e}"))?;
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("empty dump")?;
    let header: DumpHeader =
        serde_json::from_str(header_line).map_err(|e| format!("bad dump header: {e}"))?;
    if header.format != "tslp-trace" {
        return Err(format!("not a trace dump: format {:?}", header.format));
    }
    if header.version != TRACE_DUMP_VERSION {
        return Err(format!(
            "unsupported trace dump version {} (supported: {TRACE_DUMP_VERSION})",
            header.version
        ));
    }
    let mut events = Vec::with_capacity(header.events);
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let ev: TraceEvent =
            serde_json::from_str(line).map_err(|e| format!("bad event on line {}: {e}", i + 2))?;
        events.push(ev);
    }
    if events.len() != header.events {
        return Err(format!(
            "truncated dump: header promises {} events, found {}",
            header.events,
            events.len()
        ));
    }
    Ok(TraceDump { version: header.version, reason: header.reason, dropped: header.dropped, events })
}

/// Human name for the health-class tokens carried by
/// [`TraceKind::HealthChanged`] (`ixp-monitor`'s encoding: Clean=0, Gappy=1,
/// RateLimited=2, PathChange=3, AddrUnstable=4, Silent=5).
pub fn health_class_name(token: u64) -> &'static str {
    match token {
        0 => "Clean",
        1 => "Gappy",
        2 => "RateLimited",
        3 => "PathChange",
        4 => "AddrUnstable",
        5 => "Silent",
        _ => "Unknown",
    }
}

/// Human name for the recovery-outcome tokens carried by
/// [`TraceKind::CheckpointRestore`] (`ShardRecovery`'s order: Restored=0,
/// RebuiltMissing=1, RebuiltStale=2, RebuiltCorrupt=3).
pub fn recovery_name(token: u64) -> &'static str {
    match token {
        0 => "Restored",
        1 => "RebuiltMissing",
        2 => "RebuiltStale",
        3 => "RebuiltCorrupt",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let fl = FlightRecorder::new(1, 4);
        for r in 0..10u64 {
            fl.trace(TraceEvent::new(TraceKind::SampleShed, r, 0, 7).a(r));
        }
        assert_eq!(fl.dropped(), 6);
        assert_eq!(fl.retained(), 4);
        let snap = fl.snapshot();
        assert_eq!(snap.len(), 4);
        // Oldest four evicted; rounds 6..10 retained, in order, seq monotone.
        assert_eq!(snap.iter().map(|e| e.round).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn lanes_are_independent_and_merge_sorted() {
        let fl = FlightRecorder::new(4, 16);
        // Interleave rounds across lanes out of submission order.
        fl.trace(TraceEvent::new(TraceKind::OnlineUpshift, 5, 2, 10).v(3.5));
        fl.trace(TraceEvent::new(TraceKind::OnlineUpshift, 1, 3, 11));
        fl.trace(TraceEvent::new(TraceKind::ModeChange, 5, 0, NO_LINK).a(1));
        fl.trace(TraceEvent::new(TraceKind::OnlineDownshift, 3, 2, 10));
        let snap = fl.snapshot();
        assert_eq!(snap.iter().map(|e| (e.round, e.shard)).collect::<Vec<_>>(), vec![
            (1, 3),
            (3, 2),
            (5, 0),
            (5, 2)
        ]);
    }

    #[test]
    fn dump_roundtrips_through_parse() {
        let fl = FlightRecorder::new(2, 8);
        fl.trace(TraceEvent::new(TraceKind::WorkerPanic, 12, 1, NO_LINK).a(1));
        fl.trace(TraceEvent::new(TraceKind::ShardRestore, 12, 1, NO_LINK));
        fl.trace(TraceEvent::new(TraceKind::BatchChangepoint, 40, 0, 3).a(812).v(0.995));
        let bytes = fl.dump_jsonl("unit test");
        let dump = parse_dump(&bytes).expect("roundtrip");
        assert_eq!(dump.version, TRACE_DUMP_VERSION);
        assert_eq!(dump.reason, "unit test");
        assert_eq!(dump.dropped, 0);
        assert_eq!(dump.events, fl.snapshot());
        // A dump is a read: the rings still hold everything.
        assert_eq!(fl.retained(), 3);
    }

    #[test]
    fn parse_rejects_garbage_and_truncation() {
        assert!(parse_dump(b"").is_err());
        assert!(parse_dump(b"not json\n").is_err());
        assert!(parse_dump(br#"{"format":"other","version":1,"reason":"","lanes":1,"dropped":0,"events":0}"#).is_err());
        let fl = FlightRecorder::new(1, 4);
        fl.trace(TraceEvent::new(TraceKind::SampleShed, 0, 0, 0));
        fl.trace(TraceEvent::new(TraceKind::SampleShed, 1, 0, 0));
        let bytes = fl.dump_jsonl("t");
        // Drop the last event line: header promises 2, finds 1.
        let cut = bytes[..bytes.len() - 2].iter().rposition(|&b| b == b'\n').unwrap() + 1;
        let err = parse_dump(&bytes[..cut]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn token_names_cover_known_values() {
        assert_eq!(health_class_name(0), "Clean");
        assert_eq!(health_class_name(5), "Silent");
        assert_eq!(health_class_name(99), "Unknown");
        assert_eq!(recovery_name(3), "RebuiltCorrupt");
        assert_eq!(recovery_name(42), "Unknown");
    }
}
