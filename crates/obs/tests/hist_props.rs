//! Property tests for the telemetry histogram: merge must be exactly
//! associative and commutative (the whole merge-at-drain design rests on
//! drain order not mattering), and the bucket boundaries must survive a trip
//! through the JSON exporter bit for bit.

use ixp_obs::{Histogram, MetricSheet, RunManifest};
use proptest::prelude::*;

/// Build a histogram from a sample vector (values span underflow, every
/// finite bucket, and overflow).
fn hist_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(0u64..2_000_000, 0..40),
        ys in proptest::collection::vec(0u64..2_000_000, 0..40),
    ) {
        // Map raw draws onto a wide magnitude range: 0 .. ~2e3 ms plus
        // occasional giants that overflow the finite buckets.
        let lift = |v: &u64| {
            let x = *v as f64 / 1000.0;
            if v % 17 == 0 { x * 1e6 } else { x }
        };
        let a = hist_of(&xs.iter().map(lift).collect::<Vec<_>>());
        let b = hist_of(&ys.iter().map(lift).collect::<Vec<_>>());
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(0u64..5_000_000, 0..30),
        ys in proptest::collection::vec(0u64..5_000_000, 0..30),
        zs in proptest::collection::vec(0u64..5_000_000, 0..30),
    ) {
        let lift = |vs: &[u64]| vs.iter().map(|&v| v as f64 / 250.0).collect::<Vec<_>>();
        let (a, b, c) = (hist_of(&lift(&xs)), hist_of(&lift(&ys)), hist_of(&lift(&zs)));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn merge_equals_recording_everything_once(
        xs in proptest::collection::vec(0u64..1_000_000, 0..50),
        split in 0usize..50,
    ) {
        let vals: Vec<f64> = xs.iter().map(|&v| v as f64 / 100.0).collect();
        let k = split.min(vals.len());
        let m = merged(&hist_of(&vals[..k]), &hist_of(&vals[k..]));
        prop_assert_eq!(m, hist_of(&vals));
    }

    #[test]
    fn histogram_roundtrips_through_json(
        xs in proptest::collection::vec(0u64..3_000_000, 0..40),
    ) {
        let h = hist_of(&xs.iter().map(|&v| v as f64 / 333.0).collect::<Vec<_>>());
        let mut sheet = MetricSheet::new();
        sheet.merge_hist("rtt", &h);
        let manifest = RunManifest::new(1, 2, 3, 0.5, sheet);
        let back = RunManifest::from_json(&manifest.to_json()).expect("parse");
        prop_assert_eq!(&back.sheet.histograms["rtt"], &h);
    }
}

/// Bucket boundaries are powers of two; the JSON float writer prints
/// shortest-roundtrip forms, so the boundary list itself must survive a
/// serde trip bit for bit.
#[test]
fn boundaries_roundtrip_bit_exact() {
    let bounds = Histogram::boundaries();
    assert!(bounds.windows(2).all(|w| w[0] < w[1]), "boundaries sorted");
    let json = serde_json::to_string(&bounds).unwrap();
    let back: Vec<f64> = serde_json::from_str(&json).unwrap();
    assert_eq!(
        back.iter().map(|b| b.to_bits()).collect::<Vec<_>>(),
        bounds.iter().map(|b| b.to_bits()).collect::<Vec<_>>(),
    );
    // Every recorded sample lands strictly below its bucket's upper bound.
    for v in [0.0, 1e-9, 0.6, 1.0, 5.0, 1e4, 1e9] {
        let b = Histogram::bucket_of(v).unwrap();
        assert!(v < Histogram::upper_bound(b) || b + 1 == bounds.len() + 1);
        if b > 0 && b < bounds.len() {
            assert!(v >= Histogram::upper_bound(b - 1), "v {v} bucket {b}");
        }
    }
}
