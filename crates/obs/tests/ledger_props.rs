//! Property tests for [`ProbeLedger::merge`]: the quarantine-restored-shard
//! contract. A link's ledger fragments arrive from worker-local sheets in
//! whatever order the pool drained them — and after a shard quarantine and
//! restore, the fragment carrying the `QuarantineNote` (and the health
//! verdict) may land before or after the plain counter fragments. Merge
//! must therefore be associative always, commutative on every counter
//! (including `path_changes`), and fully order-independent whenever the
//! `Option` verdict fields (health, quarantine) are carried by at most one
//! fragment — which is exactly how the pipeline produces them: one
//! assessment, one quarantine fold, per link.

use ixp_obs::{ProbeLedger, QuarantineNote};
use proptest::prelude::*;

/// A ledger fragment: counters plus optional verdicts.
#[allow(clippy::too_many_arguments)]
fn fragment(
    counts: [u64; 12],
    screened: bool,
    health: Option<&str>,
    quarantine: Option<(usize, &str)>,
) -> ProbeLedger {
    ProbeLedger {
        sent: counts[0],
        answered: counts[1],
        timed_out: counts[2],
        retries: counts[3],
        rate_limited: counts[4],
        rounds: counts[5],
        screened_out: screened,
        checkpoint_hits: counts[6],
        checkpoint_writes: counts[7],
        health: health.map(str::to_string),
        events: counts[8],
        artifact_events: counts[9],
        path_changes: counts[10],
        quarantined: quarantine
            .map(|(worker, message)| QuarantineNote { worker, message: message.to_string() }),
    }
}

fn arb_counts() -> impl Strategy<Value = [u64; 12]> {
    proptest::collection::vec(0u64..1_000_000, 12).prop_map(|v| {
        let mut a = [0u64; 12];
        a.copy_from_slice(&v);
        a
    })
}

fn arb_health() -> impl Strategy<Value = Option<&'static str>> {
    proptest::prop_oneof![
        Just(None),
        Just(Some("clean")),
        Just(Some("gappy")),
        Just(Some("path-change")),
        Just(Some("silent")),
    ]
}

fn arb_quarantine() -> impl Strategy<Value = Option<(usize, &'static str)>> {
    proptest::prop_oneof![
        Just(None),
        (0usize..8).prop_map(|w| Some((w, "worker panicked: detector poisoned"))),
    ]
}

fn arb_ledger() -> impl Strategy<Value = ProbeLedger> {
    (arb_counts(), any::<bool>(), arb_health(), arb_quarantine())
        .prop_map(|(c, s, h, q)| fragment(c, s, h, q))
}

fn merged(a: &ProbeLedger, b: &ProbeLedger) -> ProbeLedger {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// The counter view: every field that must commute unconditionally.
fn counters(l: &ProbeLedger) -> ([u64; 12], bool) {
    (
        [
            l.sent,
            l.answered,
            l.timed_out,
            l.retries,
            l.rate_limited,
            l.rounds,
            l.checkpoint_hits,
            l.checkpoint_writes,
            l.events,
            l.artifact_events,
            l.path_changes,
            0,
        ],
        l.screened_out,
    )
}

proptest! {
    /// Merge is associative for arbitrary fragments — including ones where
    /// several carry conflicting health/quarantine verdicts (last-Some
    /// wins, and grouping does not change which one is last).
    #[test]
    fn merge_is_associative(a in arb_ledger(), b in arb_ledger(), c in arb_ledger()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// Every counter (and the screened flag) commutes unconditionally,
    /// whatever the verdict fields are doing.
    #[test]
    fn counters_commute(a in arb_ledger(), b in arb_ledger()) {
        prop_assert_eq!(counters(&merged(&a, &b)), counters(&merged(&b, &a)));
    }

    /// With at most one fragment carrying each verdict — the only shape the
    /// pipeline produces — merge commutes *entirely*, quarantine notes and
    /// health included.
    #[test]
    fn disjoint_verdicts_commute_fully(
        ca in arb_counts(),
        cb in arb_counts(),
        health in arb_health(),
        quarantine in arb_quarantine(),
        health_on_a in any::<bool>(),
        quarantine_on_a in any::<bool>(),
    ) {
        let (ha, hb) = if health_on_a { (health, None) } else { (None, health) };
        let (qa, qb) = if quarantine_on_a { (quarantine, None) } else { (None, quarantine) };
        let a = fragment(ca, false, ha, qa);
        let b = fragment(cb, true, hb, qb);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Quarantine-restored shards drain in arbitrary order: folding n
    /// counter fragments plus one quarantined fragment and one health
    /// fragment gives the same ledger for *every* rotation of the drain
    /// order (rotations + the pairwise swaps above generate all
    /// permutations).
    #[test]
    fn shard_drain_order_is_irrelevant(
        counts in proptest::collection::vec(arb_counts(), 1..6),
        q_worker in 0usize..8,
        rotate in 0usize..6,
    ) {
        let mut frags: Vec<ProbeLedger> =
            counts.iter().map(|&c| fragment(c, false, None, None)).collect();
        frags.push(fragment([0; 12], false, None, Some((q_worker, "shard 1 panicked"))));
        frags.push(fragment([0; 12], false, Some("gappy"), None));
        let fold = |frags: &[ProbeLedger]| {
            let mut acc = ProbeLedger::default();
            for f in frags {
                acc.merge(f);
            }
            acc
        };
        let reference = fold(&frags);
        let mut rotated = frags.clone();
        rotated.rotate_left(rotate % frags.len());
        prop_assert_eq!(fold(&rotated), reference);
    }
}
