//! Binary segmentation: from one change point to all of them.
//!
//! Taylor's procedure applies the bootstrap CUSUM recursively: find a
//! significant change in the window, split there, recurse on both halves
//! until no significant change remains or segments reach the minimum length
//! (the paper tunes this to level shifts "that last at least 30 minutes",
//! i.e. six 5-minute samples).

use crate::cusum::{bootstrap_core, spread_core};
use crate::rank::rank_into;
use crate::scratch::DetectorScratch;
use serde::{Deserialize, Serialize};

/// Detector configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Use the rank transform inside each window (the paper's non-parametric
    /// variant). Raw-value CUSUM is kept for the ablation bench.
    pub use_ranks: bool,
    /// Bootstrap permutations per window (confidence resolution = 1/iters).
    pub bootstrap_iters: usize,
    /// Confidence required to accept a change point.
    pub confidence: f64,
    /// Minimum segment length in samples (30 min at 5-min sampling = 6).
    pub min_segment: usize,
    /// Skip the bootstrap entirely when the window spread cannot support a
    /// shift of this magnitude (same units as the series). Set to 0 to
    /// disable the shortcut.
    pub magnitude_gate: f64,
    /// Windows longer than this are *forcibly descended* (split in half,
    /// without recording a change point) even when no significant change is
    /// found at the top. A year-long series of stationary diurnal bumps has
    /// no whole-series mean shift — the permutation null (a random walk of
    /// the full length) beats the periodic signal's CUSUM range — so
    /// retrospective segmentation must work at a window scale where one
    /// event is a mean shift. Default: one day of 5-minute samples.
    pub max_window: usize,
    /// RNG seed for the bootstrap.
    pub seed: u64,
    /// Disable the bootstrap's sequential early exit and always run every
    /// permutation. The early exit settles the accept/reject decision and
    /// split identically, so this only matters to callers that consume the
    /// exact `confidence` *value* (e.g. reporting p-values); the detector
    /// itself only compares against the threshold. Default `false`.
    pub exact_confidence: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            use_ranks: true,
            bootstrap_iters: 199,
            confidence: 0.95,
            min_segment: 6,
            magnitude_gate: 0.0,
            max_window: 288,
            seed: 0x1234_5678,
            exact_confidence: false,
        }
    }
}

/// A maximal run of samples between change points.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Segment {
    /// First sample index (inclusive).
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
    /// Median of the segment's samples.
    pub level: f64,
    /// Bootstrap confidence of the change point at `start` (the segment's
    /// left boundary). `1.0` for the first segment (the series start is not
    /// a detected boundary) and for segments cut at caller-supplied change
    /// points. With the default early-exit bootstrap this is a decision-side
    /// bound — the permutation loop stops once accept/reject is settled —
    /// so it is exact only under [`DetectorConfig::exact_confidence`]; the
    /// corresponding p-value is `1.0 - confidence`.
    pub confidence: f64,
}

// Hand-written: pre-provenance JSON payloads carry no `confidence` key, and
// the vendored derive has no `#[serde(default)]` — a missing boundary
// confidence reads as 1.0 ("accepted, bound unknown").
impl serde::Deserialize for Segment {
    fn from_value(v: &serde::Value) -> Result<Segment, serde::Error> {
        let m = v.as_map().ok_or_else(|| serde::Error::msg("expected map for Segment"))?;
        Ok(Segment {
            start: serde::Deserialize::from_value(serde::field(m, "start")?)?,
            end: serde::Deserialize::from_value(serde::field(m, "end")?)?,
            level: serde::Deserialize::from_value(serde::field(m, "level")?)?,
            confidence: match serde::field(m, "confidence") {
                Ok(c) => serde::Deserialize::from_value(c)?,
                Err(_) => 1.0,
            },
        })
    }
}

impl Segment {
    /// Number of samples in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }
    /// True when the segment holds no samples.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Selection-based median over a caller-provided buffer: one
/// `select_nth_unstable_by` instead of a full sort. For even `n` the lower
/// middle value is the maximum of the left partition the selection leaves
/// behind — bitwise identical to the sorted formula, since `f64` addition
/// is commutative.
pub(crate) fn median_core(window: &[f64], buf: &mut Vec<f64>) -> f64 {
    let n = window.len();
    if n == 0 {
        return f64::NAN;
    }
    buf.clear();
    buf.extend_from_slice(window);
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN in series");
    let (left, &mut upper, _) = buf.select_nth_unstable_by(n / 2, cmp);
    if n % 2 == 1 {
        upper
    } else {
        let lower = left.iter().copied().fold(f64::MIN, f64::max);
        (lower + upper) / 2.0
    }
}

/// Core segmentation loop over caller-provided scratch. Leaves the sorted
/// change points in `scratch.cps`.
pub(crate) fn detect_into(series: &[f64], cfg: &DetectorConfig, scratch: &mut DetectorScratch) {
    let DetectorScratch { shuffle, ranks, sort_idx, select, stack, cps, confs, .. } = scratch;
    cps.clear();
    confs.clear();
    stack.clear();
    stack.push((0usize, series.len()));
    let decision = if cfg.exact_confidence { None } else { Some(cfg.confidence) };
    // Depth guard: segmentation of an n-sample series can produce at most
    // n / min_segment change points; anything beyond is a logic error.
    let max_cps = series.len() / cfg.min_segment.max(1) + 1;
    while let Some((lo, hi)) = stack.pop() {
        let len = hi - lo;
        if len < 2 * cfg.min_segment.max(1) {
            continue;
        }
        let window = &series[lo..hi];
        if cfg.magnitude_gate > 0.0 && !spread_core(window, cfg.magnitude_gate, select) {
            continue;
        }
        let data: &[f64] = if cfg.use_ranks {
            rank_into(window, sort_idx, ranks);
            ranks
        } else {
            window
        };
        // Seed varies per window so sibling windows don't share permutations.
        let seed = cfg.seed ^ ((lo as u64) << 32) ^ hi as u64;
        let r = bootstrap_core(data, cfg.bootstrap_iters, seed, decision, shuffle);
        if r.confidence < cfg.confidence {
            // No whole-window shift; descend into halves (no change point
            // recorded) so window-scale structure stays visible.
            if cfg.max_window > 0 && len > cfg.max_window {
                let mid = lo + len / 2;
                stack.push((lo, mid));
                stack.push((mid, hi));
            }
            continue;
        }
        // New regime starts after the peak; clamp so both halves respect the
        // minimum segment length.
        let split = (lo + r.split + 1).clamp(lo + cfg.min_segment, hi - cfg.min_segment);
        cps.push(split);
        confs.push(r.confidence);
        assert!(cps.len() <= max_cps, "segmentation runaway");
        stack.push((lo, split));
        stack.push((split, hi));
    }
    // Insertion co-sort of (cps, confs) by change-point index: the list is
    // short (≤ len/min_segment) and splits are unique, and sorting in place
    // keeps the pass allocation-free.
    for i in 1..cps.len() {
        let (c, f) = (cps[i], confs[i]);
        let mut j = i;
        while j > 0 && cps[j - 1] > c {
            cps[j] = cps[j - 1];
            confs[j] = confs[j - 1];
            j -= 1;
        }
        cps[j] = c;
        confs[j] = f;
    }
}

/// Cut `series` at the change points already in `scratch.cps`, leaving the
/// segments in `scratch.segs`.
pub(crate) fn segments_into(series: &[f64], scratch: &mut DetectorScratch) {
    let DetectorScratch { select, cps, confs, segs, .. } = scratch;
    segs.clear();
    if series.is_empty() {
        return;
    }
    let mut start = 0usize;
    // Each segment carries the bootstrap confidence of its *left* boundary;
    // the series start — and any caller-supplied change point without a
    // recorded bootstrap (`confs` shorter than `cps`) — reads as 1.0.
    let mut conf = 1.0f64;
    for (k, &cp) in cps.iter().enumerate() {
        assert!(cp > start && cp < series.len(), "change point {cp} out of order/bounds");
        segs.push(Segment {
            start,
            end: cp,
            level: median_core(&series[start..cp], select),
            confidence: conf,
        });
        start = cp;
        conf = confs.get(k).copied().unwrap_or(1.0);
    }
    segs.push(Segment {
        start,
        end: series.len(),
        level: median_core(&series[start..], select),
        confidence: conf,
    });
}

/// Detect all change points in `series`. Returns sorted indices; index `i`
/// means "a new regime begins at sample `i`".
pub fn detect_change_points(series: &[f64], cfg: &DetectorConfig) -> Vec<usize> {
    let mut scratch = DetectorScratch::new();
    detect_into(series, cfg, &mut scratch);
    scratch.cps
}

/// Cut `series` into level segments at `change_points`.
pub fn segments(series: &[f64], change_points: &[usize]) -> Vec<Segment> {
    let mut scratch = DetectorScratch::new();
    scratch.cps.extend_from_slice(change_points);
    segments_into(series, &mut scratch);
    scratch.segs
}

/// Convenience: detect and segment in one call.
pub fn level_segments(series: &[f64], cfg: &DetectorConfig) -> Vec<Segment> {
    let mut scratch = DetectorScratch::new();
    detect_into(series, cfg, &mut scratch);
    segments_into(series, &mut scratch);
    scratch.segs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_steps(levels: &[(usize, f64)], noise_amp: f64) -> Vec<f64> {
        // Deterministic pseudo-noise.
        let mut out = Vec::new();
        for (seg_idx, &(n, level)) in levels.iter().enumerate() {
            for i in 0..n {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seg_idx as u64 * 0x517C_C1B7);
                let u = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                out.push(level + noise_amp * u);
            }
        }
        out
    }

    #[test]
    fn finds_single_step() {
        let s = noisy_steps(&[(100, 5.0), (100, 25.0)], 1.0);
        let cps = detect_change_points(&s, &DetectorConfig::default());
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert!((95..=105).contains(&cps[0]), "{cps:?}");
        let segs = segments(&s, &cps);
        assert_eq!(segs.len(), 2);
        assert!((segs[0].level - 5.0).abs() < 1.0);
        assert!((segs[1].level - 25.0).abs() < 1.0);
    }

    #[test]
    fn finds_up_then_down() {
        let s = noisy_steps(&[(120, 2.0), (60, 30.0), (120, 2.0)], 1.5);
        let segs = level_segments(&s, &DetectorConfig::default());
        assert_eq!(segs.len(), 3, "{segs:?}");
        assert!(segs[1].level > segs[0].level + 20.0);
        assert!(segs[1].level > segs[2].level + 20.0);
        // Boundaries near the truth.
        assert!((115..=125).contains(&segs[1].start), "{segs:?}");
        assert!((175..=185).contains(&segs[1].end), "{segs:?}");
    }

    #[test]
    fn flat_noise_yields_one_segment() {
        let s = noisy_steps(&[(400, 10.0)], 2.0);
        let segs = level_segments(&s, &DetectorConfig::default());
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert_eq!(segs[0].len(), 400);
    }

    #[test]
    fn magnitude_gate_skips_small_shifts() {
        let s = noisy_steps(&[(100, 10.0), (100, 13.0)], 0.5);
        let mut cfg = DetectorConfig { magnitude_gate: 10.0, ..DetectorConfig::default() };
        assert!(detect_change_points(&s, &cfg).is_empty());
        cfg.magnitude_gate = 0.0;
        assert_eq!(detect_change_points(&s, &cfg).len(), 1);
    }

    #[test]
    fn min_segment_respected() {
        let s = noisy_steps(&[(50, 0.0), (3, 40.0), (50, 0.0)], 0.5);
        let cfg = DetectorConfig { min_segment: 6, ..DetectorConfig::default() };
        let segs = level_segments(&s, &cfg);
        for seg in &segs {
            assert!(seg.len() >= 6, "{segs:?}");
        }
    }

    #[test]
    fn short_series_is_one_segment() {
        let s = vec![1.0, 2.0, 3.0];
        let segs = level_segments(&s, &DetectorConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].level, 2.0);
    }

    #[test]
    fn segments_empty_series() {
        assert!(segments(&[], &[]).is_empty());
    }

    #[test]
    fn raw_mode_also_detects() {
        let s = noisy_steps(&[(100, 5.0), (100, 25.0)], 1.0);
        let cfg = DetectorConfig { use_ranks: false, ..DetectorConfig::default() };
        assert_eq!(detect_change_points(&s, &cfg).len(), 1);
    }

    #[test]
    fn ranks_resist_outlier_contamination() {
        // 10 giant spikes in an otherwise flat series: rank CUSUM must not
        // declare a level shift, raw CUSUM may. This is the reason §5.2 uses
        // the non-parametric variant.
        let mut s = noisy_steps(&[(300, 10.0)], 0.5);
        for k in 0..10 {
            s[30 * k + 7] = 500.0;
        }
        let cfg = DetectorConfig::default();
        assert!(detect_change_points(&s, &cfg).is_empty(), "rank CUSUM flagged outliers");
    }

    #[test]
    fn exact_confidence_mode_same_change_points() {
        // The escape hatch disables the early exit; decisions (and hence
        // change points) must be identical either way.
        let s = noisy_steps(&[(150, 3.0), (80, 19.0), (400, 3.0), (60, 15.0)], 2.0);
        let fast = DetectorConfig::default();
        let exact = DetectorConfig { exact_confidence: true, ..fast.clone() };
        assert_eq!(detect_change_points(&s, &fast), detect_change_points(&s, &exact));
    }

    #[test]
    fn median_core_matches_sorting() {
        fn sorted_median(window: &[f64]) -> f64 {
            let mut v = window.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = v.len();
            if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 }
        }
        let mut buf = Vec::new();
        for n in 1usize..40 {
            let window: Vec<f64> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    ((h >> 40) % 17) as f64 // plenty of ties
                })
                .collect();
            assert_eq!(median_core(&window, &mut buf), sorted_median(&window), "n={n}");
        }
        assert!(median_core(&[], &mut buf).is_nan());
    }

    #[test]
    fn detection_is_deterministic() {
        let s = noisy_steps(&[(150, 3.0), (80, 19.0), (150, 3.0)], 2.0);
        let cfg = DetectorConfig::default();
        assert_eq!(detect_change_points(&s, &cfg), detect_change_points(&s, &cfg));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A planted step of magnitude ≥ 8× the noise amplitude is always
        /// found, within ±min_segment of the true location, with level
        /// estimates within the noise amplitude.
        #[test]
        fn planted_step_is_found(
            at in 30usize..170,
            lo_level in 0.0f64..20.0,
            jump in 8.0f64..60.0,
            seed in 0u64..1000,
        ) {
            let n = 200;
            let noise_amp = 1.0;
            let series: Vec<f64> = (0..n).map(|i| {
                let h = (i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let u = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                let level = if i < at { lo_level } else { lo_level + jump };
                level + noise_amp * u
            }).collect();
            let cfg = DetectorConfig::default();
            let cps = detect_change_points(&series, &cfg);
            prop_assert!(!cps.is_empty(), "missed a {jump}-unit step at {at}");
            let nearest = cps.iter().map(|&c| (c as i64 - at as i64).abs()).min().unwrap();
            prop_assert!(nearest <= cfg.min_segment as i64, "nearest cp {nearest} samples away");
        }

        /// Segments always tile the series exactly.
        #[test]
        fn segments_tile(series in proptest::collection::vec(0.0f64..100.0, 12..300)) {
            let segs = level_segments(&series, &DetectorConfig::default());
            prop_assert_eq!(segs[0].start, 0);
            prop_assert_eq!(segs.last().unwrap().end, series.len());
            for w in segs.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}
