//! Reusable detector working memory: the allocation-free fast path.
//!
//! Every routine in this crate that historically allocated per call — the
//! bootstrap's shuffle buffer, the rank transform's index + output buffers,
//! the selection buffers behind `median`, `spread_reaches` and the
//! segment-level baseline quantile, the change-point interval's resampled
//! series, and the segmentation work stack itself — can instead borrow its
//! memory from a [`DetectorScratch`]. A campaign assessing thousands of
//! links holds one scratch per worker thread; after the first (warm-up)
//! series every subsequent `detect → segment → baseline` pass performs zero
//! heap allocation, which the `detect_throughput` bench asserts with a
//! counting allocator.
//!
//! The allocating free functions (`detect_change_points`,
//! `level_segments`, `cusum_bootstrap`, …) are kept as thin wrappers over
//! the scratch paths, so existing call sites and results are unchanged —
//! an equivalence suite (`tests/equivalence.rs`) pins the scratch + early-
//! exit engine byte-identical to the seed implementation.

use crate::segment::{DetectorConfig, Segment};

/// Working buffers for one detector instance (one per worker thread).
///
/// All buffers grow to the high-water mark of the series they have seen and
/// are then reused; dropping the scratch releases everything at once.
#[derive(Clone, Debug, Default)]
pub struct DetectorScratch {
    /// Permutation buffer for the bootstrap (`cusum_bootstrap`).
    pub(crate) shuffle: Vec<f64>,
    /// Rank-transform output (`rank_transform`).
    pub(crate) ranks: Vec<f64>,
    /// Sort-index buffer (`rank_transform`).
    pub(crate) sort_idx: Vec<usize>,
    /// Selection buffer (`median`, `spread_reaches`, window quantiles).
    pub(crate) select: Vec<f64>,
    /// Resampled series for `cusum_cp_interval`.
    pub(crate) boot: Vec<f64>,
    /// Change-point estimates for `cusum_cp_interval`.
    pub(crate) estimates: Vec<usize>,
    /// Binary-segmentation work stack.
    pub(crate) stack: Vec<(usize, usize)>,
    /// Change-point output buffer.
    pub(crate) cps: Vec<usize>,
    /// Bootstrap confidences aligned with `cps` (empty for caller-supplied
    /// change points).
    pub(crate) confs: Vec<f64>,
    /// Level-segment output buffer.
    pub(crate) segs: Vec<Segment>,
    /// `(level, len)` pairs for the weighted baseline quantile.
    pub(crate) weights: Vec<(f64, usize)>,
}

impl DetectorScratch {
    /// Fresh scratch with empty buffers (they size themselves on first use).
    pub fn new() -> DetectorScratch {
        DetectorScratch::default()
    }

    /// Detect all change points in `series` without allocating (after
    /// warm-up). Same results as [`crate::segment::detect_change_points`];
    /// the returned slice borrows this scratch and is valid until the next
    /// call.
    pub fn detect_change_points(&mut self, series: &[f64], cfg: &DetectorConfig) -> &[usize] {
        crate::segment::detect_into(series, cfg, self);
        &self.cps
    }

    /// Detect and cut `series` into level segments without allocating
    /// (after warm-up). Same results as
    /// [`crate::segment::level_segments`]; the returned slice borrows this
    /// scratch and is valid until the next call.
    pub fn level_segments(&mut self, series: &[f64], cfg: &DetectorConfig) -> &[Segment] {
        crate::segment::detect_into(series, cfg, self);
        crate::segment::segments_into(series, self);
        &self.segs
    }

    /// Level segments plus the length-weighted baseline quantile of their
    /// levels, in one call (the shape `assess_link` needs). Computing both
    /// here lets the baseline reuse this scratch while the segment slice it
    /// describes is borrowed out.
    pub fn segment_series(
        &mut self,
        series: &[f64],
        cfg: &DetectorConfig,
        baseline_quantile: f64,
    ) -> (&[Segment], f64) {
        crate::segment::detect_into(series, cfg, self);
        crate::segment::segments_into(series, self);
        let base = crate::events::baseline_core(&self.segs, baseline_quantile, &mut self.weights);
        (&self.segs, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::baseline_level;
    use crate::segment::{detect_change_points, level_segments};

    fn steps(levels: &[(usize, f64)], noise_amp: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for (k, &(n, level)) in levels.iter().enumerate() {
            for i in 0..n {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(k as u64 * 0x517C_C1B7);
                let u = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                out.push(level + noise_amp * u);
            }
        }
        out
    }

    #[test]
    fn scratch_matches_wrappers_and_reuse_is_clean() {
        let mut scratch = DetectorScratch::new();
        let cfg = DetectorConfig::default();
        // Interleave very different series through ONE scratch: stale state
        // from a previous call must never leak into the next.
        let corpora = [
            steps(&[(400, 5.0)], 1.0),
            steps(&[(150, 2.0), (90, 30.0), (150, 2.0)], 1.5),
            steps(&[(40, 1.0)], 0.2),
            steps(&[(100, 10.0), (100, 25.0), (100, 8.0)], 2.0),
        ];
        for series in &corpora {
            assert_eq!(scratch.detect_change_points(series, &cfg), detect_change_points(series, &cfg));
            assert_eq!(scratch.level_segments(series, &cfg), level_segments(series, &cfg));
            let (segs, base) = scratch.segment_series(series, &cfg, 0.10);
            let expect_segs = level_segments(series, &cfg);
            assert_eq!(segs, expect_segs.as_slice());
            assert_eq!(base, baseline_level(&expect_segs, 0.10));
        }
    }

    #[test]
    fn returned_slices_track_latest_call() {
        let mut scratch = DetectorScratch::new();
        let cfg = DetectorConfig::default();
        let long = steps(&[(120, 1.0), (120, 20.0)], 1.0);
        let short = steps(&[(50, 3.0)], 0.5);
        scratch.detect_change_points(&long, &cfg);
        let cps = scratch.detect_change_points(&short, &cfg);
        assert!(cps.is_empty(), "{cps:?}");
        let segs = scratch.level_segments(&short, &cfg);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end, 50);
    }
}
