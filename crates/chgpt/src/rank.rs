//! Rank transform for non-parametric change-point analysis.
//!
//! The paper's detector "identifies changes in the direction of the
//! rank-based non-parametric statistical cumulative sum (CUSUM) test" (§5.2).
//! Working on ranks instead of raw RTTs makes the statistic insensitive to
//! the heavy-tailed spikes ICMP time series are full of (a single 500 ms
//! outlier moves a mean-CUSUM a lot, but only one rank step).

use crate::scratch::DetectorScratch;

/// Core of [`rank_transform`] over caller-provided buffers. The index sort
/// is unstable — output-identical to a stable sort, because every member of
/// a tie run receives the same averaged rank no matter how the run is
/// ordered internally.
pub(crate) fn rank_into(values: &[f64], idx: &mut Vec<usize>, out: &mut Vec<f64>) {
    let n = values.len();
    out.clear();
    out.resize(n, 0.0);
    if n == 0 {
        return;
    }
    idx.clear();
    idx.extend(0..n);
    idx.sort_unstable_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN in series"));
    let mut i = 0;
    while i < n {
        // Find the tie run [i, j).
        let mut j = i + 1;
        while j < n && values[idx[j]] == values[idx[i]] {
            j += 1;
        }
        // Average rank of positions i..j (1-based ranks i+1 ..= j).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            out[k] = avg;
        }
        i = j;
    }
}

/// Replace each value by its 1-based rank; ties receive the average of the
/// ranks they span (the standard mid-rank convention).
pub fn rank_transform(values: &[f64]) -> Vec<f64> {
    let (mut idx, mut out) = (Vec::new(), Vec::new());
    rank_into(values, &mut idx, &mut out);
    out
}

/// [`rank_transform`] over reusable scratch memory; the returned slice
/// borrows the scratch and is valid until the next call that uses it.
pub fn rank_transform_with<'a>(values: &[f64], scratch: &'a mut DetectorScratch) -> &'a [f64] {
    let DetectorScratch { ranks, sort_idx, .. } = scratch;
    rank_into(values, sort_idx, ranks);
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks() {
        assert_eq!(rank_transform(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ties_get_midranks() {
        // 5,5 occupy ranks 2 and 3 → both 2.5.
        assert_eq!(rank_transform(&[1.0, 5.0, 5.0, 9.0]), vec![1.0, 2.5, 2.5, 4.0]);
        // All equal.
        assert_eq!(rank_transform(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_and_single() {
        assert!(rank_transform(&[]).is_empty());
        assert_eq!(rank_transform(&[42.0]), vec![1.0]);
    }

    #[test]
    fn scratch_variant_matches_wrapper() {
        let mut scratch = DetectorScratch::new();
        let cases: [&[f64]; 4] =
            [&[], &[42.0], &[1.0, 5.0, 5.0, 9.0], &[3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 2.6]];
        for values in cases {
            assert_eq!(rank_transform_with(values, &mut scratch), rank_transform(values));
        }
    }

    #[test]
    fn monotone_invariance() {
        // Ranks are invariant under any strictly increasing transform.
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let ys: Vec<f64> = xs.iter().map(|v: &f64| v.exp()).collect();
        assert_eq!(rank_transform(&xs), rank_transform(&ys));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Ranks are a permutation-with-ties of 1..=n: they sum to n(n+1)/2.
        #[test]
        fn ranks_sum_invariant(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let r = rank_transform(&values);
            let n = values.len() as f64;
            let sum: f64 = r.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }

        /// Order is preserved: v[i] < v[j] implies rank[i] < rank[j].
        #[test]
        fn ranks_preserve_order(values in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
            let r = rank_transform(&values);
            for i in 0..values.len() {
                for j in 0..values.len() {
                    if values[i] < values[j] {
                        prop_assert!(r[i] < r[j]);
                    }
                }
            }
        }
    }
}
