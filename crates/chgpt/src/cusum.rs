//! The CUSUM statistic and bootstrap significance test (Taylor's
//! change-point analysis, the method the paper cites for §5.2).
//!
//! For a window `x₁…xₙ` the cumulative sum `Sᵢ = Σ_{k≤i} (xₖ − x̄)` walks
//! away from zero when the mean shifts; the change point estimate is the
//! index where `|Sᵢ|` peaks, and the evidence strength is the range
//! `S_diff = max S − min S`, calibrated by comparing against the ranges of
//! random permutations of the window (the bootstrap): if the observed range
//! beats, say, 95 % of permuted ranges, a change point is declared.
//!
//! The bootstrap supports a **sequential early exit**: when the caller only
//! needs the accept/reject decision at a fixed confidence (the segmentation
//! loop's case), permutation `k` of `N` can stop as soon as the count of
//! below-range permutations either already reaches the accept threshold or
//! can no longer reach it even if every remaining permutation lands below.
//! Both stopping rules are exact — the decision and the split index are
//! identical to the full run; only the reported confidence value becomes a
//! bound on the correct side of the threshold instead of the exact
//! fraction. `DetectorConfig::exact_confidence` disables the shortcut for
//! callers that need the exact value.

use crate::scratch::DetectorScratch;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a single-window CUSUM analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CusumResult {
    /// Index (within the window) of the last sample *before* the estimated
    /// change — the new regime starts at `split + 1`.
    pub split: usize,
    /// The CUSUM range `max S − min S`.
    pub range: f64,
    /// Fraction of bootstrap permutations whose range fell below `range`.
    /// Under an early-exit decision this is a bound that settles the same
    /// side of the decision threshold as the exact fraction.
    pub confidence: f64,
}

/// Compute the CUSUM series range and argmax location for `window`.
///
/// Returns `(split, range)`; `split` is the 0-based index where `|S|` peaks.
pub fn cusum_peak(window: &[f64]) -> (usize, f64) {
    let n = window.len();
    assert!(n >= 2, "CUSUM needs at least two samples");
    let mean = window.iter().sum::<f64>() / n as f64;
    let mut s = 0.0;
    let (mut smax, mut smin) = (f64::MIN, f64::MAX);
    let (mut best_abs, mut best_idx) = (-1.0, 0);
    for (i, &x) in window.iter().enumerate() {
        s += x - mean;
        if s > smax {
            smax = s;
        }
        if s < smin {
            smin = s;
        }
        if s.abs() > best_abs {
            best_abs = s.abs();
            best_idx = i;
        }
    }
    (best_idx, smax - smin)
}

/// CUSUM range only, for bootstrap replicates: permutations are compared
/// purely on `smax - smin`, so tracking the arg-max of `|s|` (a float abs,
/// compare, and two stores per sample) is dead work there. The partial sums
/// are accumulated in exactly the same order as [`cusum_peak`], so the
/// returned range is bit-identical to `cusum_peak(window).1`.
fn cusum_range(window: &[f64]) -> f64 {
    let n = window.len();
    let mean = window.iter().sum::<f64>() / n as f64;
    let mut s = 0.0;
    let (mut smax, mut smin) = (f64::MIN, f64::MAX);
    for &x in window {
        s += x - mean;
        if s > smax {
            smax = s;
        }
        if s < smin {
            smin = s;
        }
    }
    smax - smin
}

/// Smallest below-count `t` such that `t / iters >= conf` — the accept
/// threshold of the decision `confidence >= conf` in integer form. Computed
/// with the same `f64` division the decision itself uses, so the early exit
/// agrees with the full run bit-for-bit. May exceed `iters` when `conf > 1`
/// (accept then being unreachable, exactly like the full run).
fn accept_count(iters: usize, conf: f64) -> usize {
    let mut t = (conf * iters as f64).ceil().max(0.0) as usize;
    while t > 0 && (t - 1) as f64 / iters as f64 >= conf {
        t -= 1;
    }
    while t <= iters && (t as f64 / iters as f64) < conf {
        t += 1;
    }
    t
}

/// Core bootstrap loop over a caller-provided shuffle buffer. With
/// `decision = Some(conf)` the permutation loop stops as soon as the
/// accept/reject outcome of `confidence >= conf` is mathematically settled.
pub(crate) fn bootstrap_core(
    window: &[f64],
    iters: usize,
    seed: u64,
    decision: Option<f64>,
    shuffle: &mut Vec<f64>,
) -> CusumResult {
    let (split, range) = cusum_peak(window);
    if range == 0.0 {
        // Perfectly flat window: nothing to test.
        return CusumResult { split, range, confidence: 0.0 };
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    shuffle.clear();
    shuffle.extend_from_slice(window);
    let accept_at = decision.map(|conf| accept_count(iters, conf));
    let mut below = 0usize;
    for done in 0..iters {
        if let Some(t) = accept_at {
            if below >= t {
                // Accept settled: below can only grow, and below/iters
                // already clears the threshold.
                return CusumResult { split, range, confidence: below as f64 / iters as f64 };
            }
            if below + (iters - done) < t {
                // Reject settled: even if every remaining permutation lands
                // below, the final count stays under t. Report the upper
                // bound — strictly below the threshold by construction.
                let bound = (below + (iters - done)) as f64 / iters as f64;
                return CusumResult { split, range, confidence: bound };
            }
        }
        shuffle.shuffle(&mut rng);
        let r = cusum_range(shuffle);
        if r < range {
            below += 1;
        }
    }
    CusumResult { split, range, confidence: below as f64 / iters as f64 }
}

/// Run the permutation bootstrap for `window`, returning the full result.
///
/// `iters` permutations are drawn with an RNG seeded from `seed`, so the
/// whole analysis is deterministic. The achievable confidence resolution is
/// `1/iters`.
pub fn cusum_bootstrap(window: &[f64], iters: usize, seed: u64) -> CusumResult {
    let mut shuffle = Vec::new();
    bootstrap_core(window, iters, seed, None, &mut shuffle)
}

/// [`cusum_bootstrap`] over reusable scratch memory, with an optional
/// sequential early exit: `decision = Some(conf)` stops permuting the
/// moment the accept/reject outcome of `confidence >= conf` is settled
/// (identical decision and split as the full run), `None` runs every
/// permutation and reports the exact confidence.
pub fn cusum_bootstrap_with(
    window: &[f64],
    iters: usize,
    seed: u64,
    decision: Option<f64>,
    scratch: &mut DetectorScratch,
) -> CusumResult {
    bootstrap_core(window, iters, seed, decision, &mut scratch.shuffle)
}

/// Selection-based core of [`spread_reaches`]: one `select_nth_unstable_by`
/// for the decile baseline plus a single counting pass over the raw window
/// — O(n) instead of the seed's O(n log n) sort, with identical verdicts
/// (pinned by `spread_matches_sorting_implementation`).
pub(crate) fn spread_core(window: &[f64], min_magnitude: f64, buf: &mut Vec<f64>) -> bool {
    if window.len() < 4 {
        return false;
    }
    buf.clear();
    buf.extend_from_slice(window);
    let k = buf.len() / 10;
    let (_, &mut baseline, _) =
        buf.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("NaN in series"));
    let threshold = baseline + min_magnitude;
    window.iter().filter(|&&v| v > threshold).count() >= 4
}

/// Cheap necessary condition for a detectable shift: at least four samples
/// must sit `min_magnitude` above the window's low-quantile baseline, or no
/// level shift of that magnitude lasting ≥ a few samples can exist and the
/// bootstrap can be skipped entirely. This is what keeps a 10,000-link
/// campaign tractable: healthy links cost one O(n) selection instead of
/// hundreds of permutations.
///
/// Counting excursions (rather than a percentile spread) matters: a
/// two-month congestion episode inside a 13-month series elevates only a
/// few percent of samples — invisible to a 95th percentile, but thousands
/// of excursions.
pub fn spread_reaches(window: &[f64], min_magnitude: f64) -> bool {
    let mut buf = Vec::new();
    spread_core(window, min_magnitude, &mut buf)
}

/// [`spread_reaches`] over reusable scratch memory.
pub fn spread_reaches_with(
    window: &[f64],
    min_magnitude: f64,
    scratch: &mut DetectorScratch,
) -> bool {
    spread_core(window, min_magnitude, &mut scratch.select)
}

/// Core of [`cusum_cp_interval`] over caller-provided buffers.
pub(crate) fn cp_interval_core(
    window: &[f64],
    iters: usize,
    seed: u64,
    conf: f64,
    boot: &mut Vec<f64>,
    estimates: &mut Vec<usize>,
) -> (usize, usize) {
    assert!((0.0..1.0).contains(&conf), "confidence must be in (0, 1)");
    let (split, _) = cusum_peak(window);
    let cut = (split + 1).clamp(1, window.len() - 1);
    let (left, right) = window.split_at(cut);
    let mut rng = SmallRng::seed_from_u64(seed);
    estimates.clear();
    boot.clear();
    boot.resize(window.len(), 0.0);
    for _ in 0..iters {
        for (i, v) in boot.iter_mut().enumerate() {
            *v = if i < cut {
                left[rand::Rng::gen_range(&mut rng, 0..left.len())]
            } else {
                right[rand::Rng::gen_range(&mut rng, 0..right.len())]
            };
        }
        estimates.push(cusum_peak(boot).0);
    }
    estimates.sort_unstable();
    let tail = (1.0 - conf) / 2.0;
    let lo = estimates[((iters as f64) * tail) as usize];
    // The lower index truncates toward the tail; the upper index must round
    // half-up so both tails clip symmetrically — truncating both (as the
    // seed did) biases the interval low for small `iters`.
    let hi_idx = ((iters as f64) * (1.0 - tail) + 0.5) as usize;
    let hi = estimates[hi_idx.min(iters - 1)];
    (lo.min(hi), hi.max(lo))
}

/// Bootstrap confidence interval for a change-point *location* (the second
/// half of Taylor's procedure: his tool reports each change with a
/// confidence interval on when it happened).
///
/// The window is split at the CUSUM estimate; bootstrap series are built by
/// resampling each side with replacement (preserving segment membership),
/// the change point is re-estimated on each, and the `conf` central
/// percentile interval of the estimates is returned as window-relative
/// indices `(lo, hi)` (inclusive). Sharp steps give tight intervals; shifts
/// barely above the noise give wide ones.
pub fn cusum_cp_interval(window: &[f64], iters: usize, seed: u64, conf: f64) -> (usize, usize) {
    let (mut boot, mut estimates) = (Vec::new(), Vec::new());
    cp_interval_core(window, iters, seed, conf, &mut boot, &mut estimates)
}

/// [`cusum_cp_interval`] over reusable scratch memory (the `boot` and
/// `estimates` buffers come from the scratch).
pub fn cusum_cp_interval_with(
    window: &[f64],
    iters: usize,
    seed: u64,
    conf: f64,
    scratch: &mut DetectorScratch,
) -> (usize, usize) {
    cp_interval_core(window, iters, seed, conf, &mut scratch.boot, &mut scratch.estimates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series(n: usize, at: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|i| if i < at { lo } else { hi }).collect()
    }

    #[test]
    fn range_only_variant_is_bitwise_identical() {
        let mut x = 1u64;
        let series: Vec<f64> = (0..257)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 10.0
            })
            .collect();
        for w in [2, 3, 17, 256, 257] {
            let (_, range) = cusum_peak(&series[..w]);
            assert_eq!(range.to_bits(), cusum_range(&series[..w]).to_bits());
        }
    }

    fn hash_noise(i: u64) -> f64 {
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % 1000) as f64
    }

    #[test]
    fn peak_locates_clean_step() {
        let s = step_series(100, 60, 1.0, 2.0);
        let (split, range) = cusum_peak(&s);
        assert_eq!(split, 59);
        assert!(range > 0.0);
    }

    #[test]
    fn flat_window_zero_range() {
        let s = vec![5.0; 50];
        let (_, range) = cusum_peak(&s);
        assert_eq!(range, 0.0);
        let r = cusum_bootstrap(&s, 99, 1);
        assert_eq!(r.confidence, 0.0);
    }

    #[test]
    fn bootstrap_confident_on_step() {
        let s = step_series(120, 40, 10.0, 20.0);
        let r = cusum_bootstrap(&s, 199, 42);
        assert!(r.confidence > 0.99, "confidence {}", r.confidence);
        assert_eq!(r.split, 39);
    }

    #[test]
    fn bootstrap_unconfident_on_noise() {
        // Deterministic "noise" via a full avalanche hash; no change point.
        let s: Vec<f64> = (0..200u64).map(hash_noise).collect();
        let r = cusum_bootstrap(&s, 199, 7);
        assert!(r.confidence < 0.97, "confidence {}", r.confidence);
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let s = step_series(80, 30, 0.0, 1.0);
        assert_eq!(cusum_bootstrap(&s, 99, 5), cusum_bootstrap(&s, 99, 5));
    }

    /// The sequential early exit must land on the same side of the decision
    /// threshold as the exhaustive run, for both clear accepts, clear
    /// rejects, and borderline windows — and the split must be identical.
    #[test]
    fn early_exit_decision_matches_full_run() {
        let mut scratch = DetectorScratch::new();
        let corpora: Vec<Vec<f64>> = vec![
            step_series(120, 40, 10.0, 20.0),               // clear accept
            (0..200u64).map(hash_noise).collect(),          // clear reject
            (0..120u64).map(|i| hash_noise(i) / 400.0 + if i < 60 { 0.0 } else { 1.0 }).collect(),
            (0..80u64).map(|i| hash_noise(i) / 100.0).collect(),
        ];
        for series in &corpora {
            for conf in [0.0, 0.5, 0.9, 0.95, 0.99] {
                for (iters, seed) in [(99usize, 5u64), (199, 42), (199, 7)] {
                    let exact = cusum_bootstrap(series, iters, seed);
                    let fast = cusum_bootstrap_with(series, iters, seed, Some(conf), &mut scratch);
                    assert_eq!(exact.split, fast.split);
                    assert_eq!(exact.range, fast.range);
                    assert_eq!(
                        exact.confidence >= conf,
                        fast.confidence >= conf,
                        "decision diverged at conf {conf}: exact {} fast {}",
                        exact.confidence,
                        fast.confidence
                    );
                }
            }
        }
    }

    #[test]
    fn exact_mode_with_scratch_is_bitwise_identical() {
        let mut scratch = DetectorScratch::new();
        let s: Vec<f64> = (0..150u64).map(hash_noise).collect();
        assert_eq!(cusum_bootstrap(&s, 199, 9), cusum_bootstrap_with(&s, 199, 9, None, &mut scratch));
    }

    #[test]
    fn accept_count_is_the_decision_boundary() {
        for iters in [10usize, 99, 100, 199, 500] {
            for conf in [0.0, 0.5, 0.9, 0.95, 0.975, 0.99, 1.0] {
                let t = accept_count(iters, conf);
                if t > 0 {
                    assert!((t - 1) as f64 / (iters as f64) < conf, "t-1 accepts: {iters} {conf}");
                }
                if t <= iters {
                    assert!(t as f64 / iters as f64 >= conf, "t rejects: {iters} {conf}");
                }
            }
        }
    }

    #[test]
    fn spread_gate() {
        let flat = vec![1.0; 100];
        assert!(!spread_reaches(&flat, 0.5));
        let stepped = step_series(100, 50, 1.0, 12.0);
        assert!(spread_reaches(&stepped, 10.0));
        assert!(!spread_reaches(&stepped, 12.5));
        // Short windows never pass.
        assert!(!spread_reaches(&[0.0, 100.0], 1.0));
    }

    #[test]
    fn spread_ignores_rare_outliers() {
        // One spike in 200 samples must not open the gate: the decile
        // baseline plus excursion count clips it.
        let mut s = vec![1.0; 200];
        s[77] = 500.0;
        assert!(!spread_reaches(&s, 10.0));
    }

    /// Pin the selection-based `spread_reaches` against the seed's sorting
    /// implementation on a population of random windows.
    #[test]
    fn spread_matches_sorting_implementation() {
        fn seed_spread(window: &[f64], min_magnitude: f64) -> bool {
            if window.len() < 4 {
                return false;
            }
            let mut sorted = window.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in series"));
            let baseline = sorted[sorted.len() / 10];
            let threshold = baseline + min_magnitude;
            let first_above = sorted.partition_point(|&v| v <= threshold);
            sorted.len() - first_above >= 4
        }
        let mut scratch = DetectorScratch::new();
        for case in 0..200u64 {
            let n = (hash_noise(case * 31) as usize) % 60;
            let window: Vec<f64> = (0..n as u64)
                .map(|i| hash_noise(case.wrapping_mul(1000).wrapping_add(i)) / 20.0)
                .collect();
            for mag in [0.0, 1.0, 5.0, 12.0, 40.0] {
                let want = seed_spread(&window, mag);
                assert_eq!(spread_reaches(&window, mag), want, "case {case} mag {mag}");
                assert_eq!(spread_reaches_with(&window, mag, &mut scratch), want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn cusum_rejects_tiny_window() {
        cusum_peak(&[1.0]);
    }

    #[test]
    fn cp_interval_tight_for_sharp_step() {
        let s = step_series(200, 120, 2.0, 40.0);
        let (lo, hi) = cusum_cp_interval(&s, 199, 11, 0.9);
        assert!(lo <= 119 && 119 <= hi, "true cp outside CI [{lo}, {hi}]");
        assert!(hi - lo <= 4, "CI too wide for a sharp step: [{lo}, {hi}]");
    }

    #[test]
    fn cp_interval_wider_for_weak_step() {
        // Noisy step barely above the noise floor.
        let weak: Vec<f64> = (0..200)
            .map(|i| {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let noise = ((z >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 6.0;
                if i < 120 { 10.0 + noise } else { 13.0 + noise }
            })
            .collect();
        let strong = step_series(200, 120, 10.0, 50.0);
        let (wl, wh) = cusum_cp_interval(&weak, 199, 13, 0.9);
        let (sl, sh) = cusum_cp_interval(&strong, 199, 13, 0.9);
        assert!(wh - wl > sh - sl, "weak CI [{wl},{wh}] not wider than strong [{sl},{sh}]");
    }

    #[test]
    fn cp_interval_deterministic() {
        let s = step_series(150, 60, 1.0, 9.0);
        assert_eq!(cusum_cp_interval(&s, 99, 5, 0.9), cusum_cp_interval(&s, 99, 5, 0.9));
    }

    #[test]
    fn cp_interval_scratch_matches_wrapper() {
        let mut scratch = DetectorScratch::new();
        let s = step_series(150, 60, 1.0, 9.0);
        let want = cusum_cp_interval(&s, 99, 5, 0.9);
        // Twice through the same scratch: reuse must not perturb results.
        assert_eq!(cusum_cp_interval_with(&s, 99, 5, 0.9, &mut scratch), want);
        assert_eq!(cusum_cp_interval_with(&s, 99, 5, 0.9, &mut scratch), want);
    }

    /// The upper percentile index rounds half-up; with `iters` chosen so
    /// truncation and half-up disagree (30 × 0.95 = 28.5), the interval
    /// must now include the higher-order statistic.
    #[test]
    fn cp_interval_upper_index_rounds_half_up() {
        // A weak noisy step spreads the bootstrap estimates over many
        // distinct indices, so estimates[28] != estimates[29] generically.
        let weak: Vec<f64> = (0..120)
            .map(|i| {
                let mut z = (i as u64).wrapping_add(0x51_7CC1);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let noise = ((z >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 8.0;
                if i < 60 { 10.0 + noise } else { 13.5 + noise }
            })
            .collect();
        // Reconstruct the estimate distribution the interval is cut from.
        let mut boot = Vec::new();
        let mut estimates = Vec::new();
        let (_, hi) = cp_interval_core(&weak, 30, 17, 0.9, &mut boot, &mut estimates);
        // estimates is left sorted by the core; half-up of 28.5 is 29.
        assert_eq!(hi, estimates[29].max(estimates[(30.0 * 0.05) as usize]));
    }
}
