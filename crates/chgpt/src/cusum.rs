//! The CUSUM statistic and bootstrap significance test (Taylor's
//! change-point analysis, the method the paper cites for §5.2).
//!
//! For a window `x₁…xₙ` the cumulative sum `Sᵢ = Σ_{k≤i} (xₖ − x̄)` walks
//! away from zero when the mean shifts; the change point estimate is the
//! index where `|Sᵢ|` peaks, and the evidence strength is the range
//! `S_diff = max S − min S`, calibrated by comparing against the ranges of
//! random permutations of the window (the bootstrap): if the observed range
//! beats, say, 95 % of permuted ranges, a change point is declared.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a single-window CUSUM analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CusumResult {
    /// Index (within the window) of the last sample *before* the estimated
    /// change — the new regime starts at `split + 1`.
    pub split: usize,
    /// The CUSUM range `max S − min S`.
    pub range: f64,
    /// Fraction of bootstrap permutations whose range fell below `range`.
    pub confidence: f64,
}

/// Compute the CUSUM series range and argmax location for `window`.
///
/// Returns `(split, range)`; `split` is the 0-based index where `|S|` peaks.
pub fn cusum_peak(window: &[f64]) -> (usize, f64) {
    let n = window.len();
    assert!(n >= 2, "CUSUM needs at least two samples");
    let mean = window.iter().sum::<f64>() / n as f64;
    let mut s = 0.0;
    let (mut smax, mut smin) = (f64::MIN, f64::MAX);
    let (mut best_abs, mut best_idx) = (-1.0, 0);
    for (i, &x) in window.iter().enumerate() {
        s += x - mean;
        if s > smax {
            smax = s;
        }
        if s < smin {
            smin = s;
        }
        if s.abs() > best_abs {
            best_abs = s.abs();
            best_idx = i;
        }
    }
    (best_idx, smax - smin)
}

/// Run the permutation bootstrap for `window`, returning the full result.
///
/// `iters` permutations are drawn with an RNG seeded from `seed`, so the
/// whole analysis is deterministic. The achievable confidence resolution is
/// `1/iters`.
pub fn cusum_bootstrap(window: &[f64], iters: usize, seed: u64) -> CusumResult {
    let (split, range) = cusum_peak(window);
    if range == 0.0 {
        // Perfectly flat window: nothing to test.
        return CusumResult { split, range, confidence: 0.0 };
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut shuffled = window.to_vec();
    let mut below = 0usize;
    for _ in 0..iters {
        shuffled.shuffle(&mut rng);
        let (_, r) = cusum_peak(&shuffled);
        if r < range {
            below += 1;
        }
    }
    CusumResult { split, range, confidence: below as f64 / iters as f64 }
}

/// Cheap necessary condition for a detectable shift: at least four samples
/// must sit `min_magnitude` above the window's low-quantile baseline, or no
/// level shift of that magnitude lasting ≥ a few samples can exist and the
/// bootstrap can be skipped entirely. This is what keeps a 10,000-link
/// campaign tractable: healthy links cost one O(n log n) scan instead of
/// hundreds of permutations.
///
/// Counting excursions (rather than a percentile spread) matters: a
/// two-month congestion episode inside a 13-month series elevates only a
/// few percent of samples — invisible to a 95th percentile, but thousands
/// of excursions.
pub fn spread_reaches(window: &[f64], min_magnitude: f64) -> bool {
    if window.len() < 4 {
        return false;
    }
    let mut sorted = window.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in series"));
    let baseline = sorted[sorted.len() / 10];
    let threshold = baseline + min_magnitude;
    // `sorted` is ordered: count the tail above the threshold.
    let first_above = sorted.partition_point(|&v| v <= threshold);
    sorted.len() - first_above >= 4
}

/// Bootstrap confidence interval for a change-point *location* (the second
/// half of Taylor's procedure: his tool reports each change with a
/// confidence interval on when it happened).
///
/// The window is split at the CUSUM estimate; bootstrap series are built by
/// resampling each side with replacement (preserving segment membership),
/// the change point is re-estimated on each, and the `conf` central
/// percentile interval of the estimates is returned as window-relative
/// indices `(lo, hi)` (inclusive). Sharp steps give tight intervals; shifts
/// barely above the noise give wide ones.
pub fn cusum_cp_interval(window: &[f64], iters: usize, seed: u64, conf: f64) -> (usize, usize) {
    assert!((0.0..1.0).contains(&conf), "confidence must be in (0, 1)");
    let (split, _) = cusum_peak(window);
    let cut = (split + 1).clamp(1, window.len() - 1);
    let (left, right) = window.split_at(cut);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut estimates = Vec::with_capacity(iters);
    let mut boot = vec![0.0; window.len()];
    for _ in 0..iters {
        for (i, v) in boot.iter_mut().enumerate() {
            *v = if i < cut {
                left[rand::Rng::gen_range(&mut rng, 0..left.len())]
            } else {
                right[rand::Rng::gen_range(&mut rng, 0..right.len())]
            };
        }
        estimates.push(cusum_peak(&boot).0);
    }
    estimates.sort_unstable();
    let tail = (1.0 - conf) / 2.0;
    let lo = estimates[((iters as f64) * tail) as usize];
    let hi = estimates[(((iters as f64) * (1.0 - tail)) as usize).min(iters - 1)];
    (lo.min(hi), hi.max(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series(n: usize, at: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|i| if i < at { lo } else { hi }).collect()
    }

    #[test]
    fn peak_locates_clean_step() {
        let s = step_series(100, 60, 1.0, 2.0);
        let (split, range) = cusum_peak(&s);
        assert_eq!(split, 59);
        assert!(range > 0.0);
    }

    #[test]
    fn flat_window_zero_range() {
        let s = vec![5.0; 50];
        let (_, range) = cusum_peak(&s);
        assert_eq!(range, 0.0);
        let r = cusum_bootstrap(&s, 99, 1);
        assert_eq!(r.confidence, 0.0);
    }

    #[test]
    fn bootstrap_confident_on_step() {
        let s = step_series(120, 40, 10.0, 20.0);
        let r = cusum_bootstrap(&s, 199, 42);
        assert!(r.confidence > 0.99, "confidence {}", r.confidence);
        assert_eq!(r.split, 39);
    }

    #[test]
    fn bootstrap_unconfident_on_noise() {
        // Deterministic "noise" via a full avalanche hash; no change point.
        let s: Vec<f64> = (0..200u64)
            .map(|i| {
                let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) % 1000) as f64
            })
            .collect();
        let r = cusum_bootstrap(&s, 199, 7);
        assert!(r.confidence < 0.97, "confidence {}", r.confidence);
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let s = step_series(80, 30, 0.0, 1.0);
        assert_eq!(cusum_bootstrap(&s, 99, 5), cusum_bootstrap(&s, 99, 5));
    }

    #[test]
    fn spread_gate() {
        let flat = vec![1.0; 100];
        assert!(!spread_reaches(&flat, 0.5));
        let stepped = step_series(100, 50, 1.0, 12.0);
        assert!(spread_reaches(&stepped, 10.0));
        assert!(!spread_reaches(&stepped, 12.5));
        // Short windows never pass.
        assert!(!spread_reaches(&[0.0, 100.0], 1.0));
    }

    #[test]
    fn spread_ignores_rare_outliers() {
        // One spike in 200 samples must not open the gate: the 95th
        // percentile clips it.
        let mut s = vec![1.0; 200];
        s[77] = 500.0;
        assert!(!spread_reaches(&s, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn cusum_rejects_tiny_window() {
        cusum_peak(&[1.0]);
    }

    #[test]
    fn cp_interval_tight_for_sharp_step() {
        let s = step_series(200, 120, 2.0, 40.0);
        let (lo, hi) = cusum_cp_interval(&s, 199, 11, 0.9);
        assert!(lo <= 119 && 119 <= hi, "true cp outside CI [{lo}, {hi}]");
        assert!(hi - lo <= 4, "CI too wide for a sharp step: [{lo}, {hi}]");
    }

    #[test]
    fn cp_interval_wider_for_weak_step() {
        // Noisy step barely above the noise floor.
        let weak: Vec<f64> = (0..200)
            .map(|i| {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let noise = ((z >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 6.0;
                if i < 120 { 10.0 + noise } else { 13.0 + noise }
            })
            .collect();
        let strong = step_series(200, 120, 10.0, 50.0);
        let (wl, wh) = cusum_cp_interval(&weak, 199, 13, 0.9);
        let (sl, sh) = cusum_cp_interval(&strong, 199, 13, 0.9);
        assert!(wh - wl > sh - sl, "weak CI [{wl},{wh}] not wider than strong [{sl},{sh}]");
    }

    #[test]
    fn cp_interval_deterministic() {
        let s = step_series(150, 60, 1.0, 9.0);
        assert_eq!(cusum_cp_interval(&s, 99, 5, 0.9), cusum_cp_interval(&s, 99, 5, 0.9));
    }
}
