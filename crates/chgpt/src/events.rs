//! From level segments to congestion-candidate *shift events*.
//!
//! §5.2: "We impose a threshold on the minimum magnitude of the level shifts
//! that we label as potentially caused by congestion" (the Table 1 sweep:
//! 5/10/15/20 ms), compute "the average magnitude `A_w` and the average
//! duration `Δt_UD` between consecutive upshift and downshift", and
//! *sanitize* the raw level-shift output before measuring widths (merging
//! stutters where the detector briefly dips between adjacent events).

use crate::scratch::DetectorScratch;
use crate::segment::Segment;
use serde::{Deserialize, Serialize};

/// One elevated period: consecutive segments whose level sits at least the
/// threshold above baseline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShiftEvent {
    /// First elevated sample index.
    pub start: usize,
    /// One past the last elevated sample index.
    pub end: usize,
    /// Length-weighted mean elevation above baseline during the event.
    pub magnitude: f64,
}

impl ShiftEvent {
    /// Width in samples (the `Δt_UD` contribution).
    pub fn width(&self) -> usize {
        self.end - self.start
    }
}

/// Aggregate event statistics: the numbers §6.2 reports per link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventStats {
    /// Number of events.
    pub count: usize,
    /// `A_w`: average event magnitude.
    pub avg_magnitude: f64,
    /// `Δt_UD`: average width, in samples.
    pub avg_width_samples: f64,
    /// Fraction of the observed span inside events.
    pub duty_cycle: f64,
}

/// The reference level shifts are measured against: the length-weighted
/// low quantile (default 0.10) of segment levels — "where RTT sits when the
/// queue is empty". Using a low quantile instead of the minimum keeps a
/// single anomalously low segment from dragging the baseline down.
pub fn baseline_level(segments: &[Segment], quantile: f64) -> f64 {
    let mut buf = Vec::new();
    baseline_core(segments, quantile, &mut buf)
}

/// [`baseline_level`] over reusable scratch memory.
pub fn baseline_level_with(
    segments: &[Segment],
    quantile: f64,
    scratch: &mut DetectorScratch,
) -> f64 {
    baseline_core(segments, quantile, &mut scratch.weights)
}

/// Weighted-quantile core: instead of sorting all segments by level
/// (O(n log n)), run a quickselect-style narrowing — partition around the
/// median position, sum the left partition's lengths, and recurse into the
/// half holding the target cumulative length. Shrinking ranges make the
/// selection work n + n/2 + n/4 + … = O(n) expected. Level ties return the
/// identical value under any ordering, so the result matches the sorted
/// walk exactly.
pub(crate) fn baseline_core(
    segments: &[Segment],
    quantile: f64,
    buf: &mut Vec<(f64, usize)>,
) -> f64 {
    assert!((0.0..=1.0).contains(&quantile), "quantile out of range");
    let total: usize = segments.iter().map(|s| s.len()).sum();
    if total == 0 {
        return f64::NAN;
    }
    buf.clear();
    buf.extend(segments.iter().map(|s| (s.level, s.len())));
    // The answer is the level of the first segment (in level order) whose
    // cumulative length exceeds `target`.
    let mut target = (quantile * total as f64) as usize;
    let (mut lo, mut hi) = (0usize, buf.len());
    loop {
        if hi - lo == 1 {
            return buf[lo].0;
        }
        let mid = lo + (hi - lo) / 2;
        buf[lo..hi]
            .select_nth_unstable_by(mid - lo, |a, b| a.0.partial_cmp(&b.0).expect("NaN level"));
        let left_len: usize = buf[lo..mid].iter().map(|p| p.1).sum();
        if left_len > target {
            hi = mid;
        } else {
            target -= left_len;
            lo = mid;
        }
    }
}

/// Extract events: maximal runs of segments elevated ≥ `threshold` above
/// `baseline`, keeping only runs of at least `min_width` samples.
pub fn extract_events(segments: &[Segment], baseline: f64, threshold: f64, min_width: usize) -> Vec<ShiftEvent> {
    let mut out = Vec::new();
    let mut run: Option<(usize, usize, f64)> = None; // (start, end, weighted sum)
    for s in segments {
        let elevated = s.level - baseline >= threshold;
        match (&mut run, elevated) {
            (None, true) => run = Some((s.start, s.end, (s.level - baseline) * s.len() as f64)),
            (Some((_, end, sum)), true) => {
                *end = s.end;
                *sum += (s.level - baseline) * s.len() as f64;
            }
            (Some((start, end, sum)), false) => {
                let width = *end - *start;
                if width >= min_width {
                    out.push(ShiftEvent { start: *start, end: *end, magnitude: *sum / width as f64 });
                }
                run = None;
            }
            (None, false) => {}
        }
    }
    if let Some((start, end, sum)) = run {
        let width = end - start;
        if width >= min_width {
            out.push(ShiftEvent { start, end, magnitude: sum / width as f64 });
        }
    }
    out
}

/// Level-shift sanitization (§5.2): merge events separated by gaps shorter
/// than `max_gap` samples — the detector's brief dips inside one congestion
/// episode would otherwise split a 20-hour event into fragments and skew
/// `Δt_UD` low.
pub fn sanitize_events(events: &[ShiftEvent], max_gap: usize) -> Vec<ShiftEvent> {
    let mut out: Vec<ShiftEvent> = Vec::with_capacity(events.len());
    for &e in events {
        match out.last_mut() {
            Some(prev) if e.start.saturating_sub(prev.end) <= max_gap => {
                // Width-weighted magnitude merge.
                let (w1, w2) = (prev.width() as f64, e.width() as f64);
                prev.magnitude = (prev.magnitude * w1 + e.magnitude * w2) / (w1 + w2);
                prev.end = e.end;
            }
            _ => out.push(e),
        }
    }
    out
}

/// Aggregate statistics over `events`, with `span` the total number of
/// samples observed.
pub fn event_stats(events: &[ShiftEvent], span: usize) -> EventStats {
    if events.is_empty() {
        return EventStats::default();
    }
    let count = events.len();
    let total_width: usize = events.iter().map(|e| e.width()).sum();
    EventStats {
        count,
        avg_magnitude: events.iter().map(|e| e.magnitude).sum::<f64>() / count as f64,
        avg_width_samples: total_width as f64 / count as f64,
        duty_cycle: if span == 0 { 0.0 } else { total_width as f64 / span as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start: usize, end: usize, level: f64) -> Segment {
        Segment { start, end, level, confidence: 1.0 }
    }

    #[test]
    fn baseline_is_low_quantile() {
        let segs = vec![seg(0, 800, 1.0), seg(800, 900, 30.0), seg(900, 1000, 2.0)];
        let b = baseline_level(&segs, 0.10);
        assert_eq!(b, 1.0);
        // A tiny rogue low segment does not own the baseline at q=0.10.
        let segs2 = vec![seg(0, 5, -20.0), seg(5, 1000, 1.0)];
        assert_eq!(baseline_level(&segs2, 0.10), 1.0);
    }

    #[test]
    fn baseline_quickselect_matches_sorted_walk() {
        fn sorted_walk(segments: &[Segment], quantile: f64) -> f64 {
            let total: usize = segments.iter().map(|s| s.len()).sum();
            let mut sorted: Vec<&Segment> = segments.iter().collect();
            sorted.sort_by(|a, b| a.level.partial_cmp(&b.level).unwrap());
            let target = (quantile * total as f64) as usize;
            let mut seen = 0usize;
            for s in sorted {
                seen += s.len();
                if seen > target {
                    return s.level;
                }
            }
            unreachable!()
        }
        let mut scratch = DetectorScratch::new();
        for case in 0..150u64 {
            let mut h = case.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = || {
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h >> 32
            };
            let n = 1 + (next() % 40) as usize;
            let mut start = 0usize;
            let segs: Vec<Segment> = (0..n)
                .map(|_| {
                    let len = 1 + (next() % 60) as usize;
                    let level = (next() % 9) as f64; // few distinct levels → ties
                    let s = seg(start, start + len, level);
                    start += len;
                    s
                })
                .collect();
            for q in [0.0, 0.05, 0.10, 0.5, 0.9] {
                let want = sorted_walk(&segs, q);
                assert_eq!(baseline_level(&segs, q), want, "case {case} q {q}");
                assert_eq!(baseline_level_with(&segs, q, &mut scratch), want);
            }
        }
    }

    #[test]
    fn extract_simple_event() {
        let segs = vec![seg(0, 100, 1.0), seg(100, 160, 28.0), seg(160, 300, 1.2)];
        let ev = extract_events(&segs, 1.0, 10.0, 6);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].start, 100);
        assert_eq!(ev[0].end, 160);
        assert!((ev[0].magnitude - 27.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_elevated_segments_merge() {
        let segs = vec![seg(0, 50, 0.0), seg(50, 80, 20.0), seg(80, 120, 35.0), seg(120, 200, 0.5)];
        let ev = extract_events(&segs, 0.0, 10.0, 6);
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].start, ev[0].end), (50, 120));
        let expect = (20.0 * 30.0 + 35.0 * 40.0) / 70.0;
        assert!((ev[0].magnitude - expect).abs() < 1e-9);
    }

    #[test]
    fn short_events_dropped() {
        let segs = vec![seg(0, 100, 0.0), seg(100, 103, 50.0), seg(103, 200, 0.0)];
        assert!(extract_events(&segs, 0.0, 10.0, 6).is_empty());
    }

    #[test]
    fn threshold_sweep_monotone() {
        // Events at 6, 12, 18, 25 above baseline: higher thresholds see fewer.
        let segs = vec![
            seg(0, 100, 0.0),
            seg(100, 150, 6.0),
            seg(150, 250, 0.0),
            seg(250, 300, 12.0),
            seg(300, 400, 0.0),
            seg(400, 450, 18.0),
            seg(450, 550, 0.0),
            seg(550, 600, 25.0),
            seg(600, 700, 0.0),
        ];
        let counts: Vec<usize> =
            [5.0, 10.0, 15.0, 20.0].iter().map(|&t| extract_events(&segs, 0.0, t, 6).len()).collect();
        assert_eq!(counts, vec![4, 3, 2, 1]);
    }

    #[test]
    fn trailing_event_closed() {
        let segs = vec![seg(0, 100, 0.0), seg(100, 200, 30.0)];
        let ev = extract_events(&segs, 0.0, 10.0, 6);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].end, 200);
    }

    #[test]
    fn sanitize_merges_stutter() {
        let events = vec![
            ShiftEvent { start: 100, end: 200, magnitude: 20.0 },
            ShiftEvent { start: 203, end: 300, magnitude: 30.0 },
            ShiftEvent { start: 500, end: 600, magnitude: 10.0 },
        ];
        let merged = sanitize_events(&events, 6);
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].start, merged[0].end), (100, 300));
        let expect = (20.0 * 100.0 + 30.0 * 97.0) / 197.0;
        assert!((merged[0].magnitude - expect).abs() < 1e-9);
        assert_eq!(merged[1].start, 500);
    }

    #[test]
    fn stats_compute_aw_and_width() {
        let events = vec![
            ShiftEvent { start: 0, end: 240, magnitude: 30.0 }, // 20h at 5-min samples
            ShiftEvent { start: 300, end: 540, magnitude: 25.8 },
        ];
        let st = event_stats(&events, 1000);
        assert_eq!(st.count, 2);
        assert!((st.avg_magnitude - 27.9).abs() < 1e-9);
        assert!((st.avg_width_samples - 240.0).abs() < 1e-9);
        assert!((st.duty_cycle - 0.48).abs() < 1e-9);
    }

    #[test]
    fn stats_empty() {
        assert_eq!(event_stats(&[], 100), EventStats::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_segments() -> impl Strategy<Value = Vec<Segment>> {
        proptest::collection::vec((1usize..50, 0.0f64..50.0), 1..40).prop_map(|pieces| {
            let mut segs = Vec::new();
            let mut start = 0usize;
            for (len, level) in pieces {
                segs.push(Segment { start, end: start + len, level, confidence: 1.0 });
                start += len;
            }
            segs
        })
    }

    proptest! {
        /// Events are disjoint, ordered, within bounds, and at least min width.
        #[test]
        fn event_invariants(segs in arb_segments(), threshold in 1.0f64..30.0) {
            let base = baseline_level(&segs, 0.10);
            let ev = extract_events(&segs, base, threshold, 6);
            let span = segs.last().unwrap().end;
            for e in &ev {
                prop_assert!(e.start < e.end);
                prop_assert!(e.end <= span);
                prop_assert!(e.width() >= 6);
                prop_assert!(e.magnitude >= threshold - 1e-9);
            }
            for w in ev.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
        }

        /// Raising the threshold never increases the number of events... per
        /// elevated region it can split/merge, but total elevated samples
        /// must shrink (weaker, always-true invariant).
        #[test]
        fn higher_threshold_covers_less(segs in arb_segments()) {
            let base = baseline_level(&segs, 0.10);
            let cover = |t: f64| -> usize {
                extract_events(&segs, base, t, 1).iter().map(|e| e.width()).sum()
            };
            prop_assert!(cover(5.0) >= cover(10.0));
            prop_assert!(cover(10.0) >= cover(15.0));
            prop_assert!(cover(15.0) >= cover(20.0));
        }

        /// Sanitization preserves total ordering and never loses coverage.
        #[test]
        fn sanitize_invariants(segs in arb_segments(), gap in 0usize..20) {
            let base = baseline_level(&segs, 0.10);
            let ev = extract_events(&segs, base, 5.0, 3);
            let merged = sanitize_events(&ev, gap);
            let before: usize = ev.iter().map(|e| e.width()).sum();
            let after: usize = merged.iter().map(|e| e.width()).sum();
            prop_assert!(after >= before);
            for w in merged.windows(2) {
                prop_assert!(w[0].end < w[1].start);
                prop_assert!(w[1].start - w[0].end > gap);
            }
        }
    }
}
