//! A sliding-window median detector — the ablation baseline.
//!
//! DESIGN.md calls for ablating the CUSUM detector against something
//! simpler: compare the medians of two adjacent windows sliding over the
//! series and declare a shift when they differ by more than a threshold.
//! Cheap, single-pass, no bootstrap — but it needs the threshold baked into
//! detection (the CUSUM pipeline separates *detection* from *labeling*) and
//! its localization is coarser. The `ablation_detectors` bench quantifies
//! the trade-off.

use serde::{Deserialize, Serialize};

/// Sliding-window detector configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Half-window length in samples.
    pub half_window: usize,
    /// Median difference that constitutes a shift.
    pub threshold: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { half_window: 12, threshold: 5.0 }
    }
}

/// Detect change points: indices where the left/right window medians differ
/// by at least the threshold, keeping only the local maximum of each
/// contiguous exceedance run.
///
/// Each window median is one `select_nth_unstable_by` over a buffer reused
/// across the whole slide, so the scan allocates a single half-window
/// buffer total instead of two fresh sorted copies per position.
pub fn detect_window_shifts(series: &[f64], cfg: &WindowConfig) -> Vec<usize> {
    let w = cfg.half_window;
    if series.len() < 2 * w + 1 || w == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut buf = Vec::with_capacity(w);
    let mut run_best: Option<(usize, f64)> = None;
    for i in w..series.len() - w {
        let left = crate::segment::median_core(&series[i - w..i], &mut buf);
        let right = crate::segment::median_core(&series[i..i + w], &mut buf);
        let diff = (right - left).abs();
        if diff >= cfg.threshold {
            match run_best {
                Some((_, best)) if best >= diff => {}
                _ => run_best = Some((i, diff)),
            }
        } else if let Some((idx, _)) = run_best.take() {
            out.push(idx);
        }
    }
    if let Some((idx, _)) = run_best {
        out.push(idx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(n: usize, at: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|i| if i < at { lo } else { hi }).collect()
    }

    #[test]
    fn finds_clean_step() {
        let s = step(200, 100, 1.0, 20.0);
        let cps = detect_window_shifts(&s, &WindowConfig::default());
        assert_eq!(cps.len(), 1, "{cps:?}");
        assert!((95..=105).contains(&cps[0]), "{cps:?}");
    }

    #[test]
    fn below_threshold_silent() {
        let s = step(200, 100, 1.0, 4.0);
        assert!(detect_window_shifts(&s, &WindowConfig::default()).is_empty());
    }

    #[test]
    fn two_steps_two_detections() {
        let mut s = step(300, 100, 0.0, 15.0);
        for v in s[200..].iter_mut() {
            *v = 0.0;
        }
        let cps = detect_window_shifts(&s, &WindowConfig::default());
        assert_eq!(cps.len(), 2, "{cps:?}");
    }

    #[test]
    fn too_short_series() {
        assert!(detect_window_shifts(&[1.0; 10], &WindowConfig::default()).is_empty());
    }

    #[test]
    fn single_outlier_not_a_shift() {
        // Medians shrug off one spike.
        let mut s = vec![2.0; 200];
        s[100] = 400.0;
        assert!(detect_window_shifts(&s, &WindowConfig::default()).is_empty());
    }
}
