//! # ixp-chgpt — level-shift (change-point) detection
//!
//! The statistical engine behind §5.2 of the paper: Taylor's change-point
//! analysis built from a **rank-based non-parametric CUSUM** statistic with
//! **permutation-bootstrap significance**, applied recursively (binary
//! segmentation) to cut an RTT time series into level segments; plus the
//! machinery that turns segments into *shift events* with magnitudes
//! (`A_w`), widths (`Δt_UD`), minimum-duration filtering (30 minutes) and
//! the Table 1 magnitude thresholds (5/10/15/20 ms).
//!
//! The crate is deliberately substrate-free: series are `&[f64]` at uniform
//! spacing and events are index ranges. `tslp-core` maps indices to
//! campaign timestamps.
//!
//! ```
//! use ixp_chgpt::prelude::*;
//!
//! // A day of 5-minute samples: flat at 2 ms, one 3-hour event at 25 ms.
//! let mut rtt_ms = vec![2.0; 288];
//! for v in rtt_ms[120..156].iter_mut() { *v = 25.0; }
//!
//! let segs = level_segments(&rtt_ms, &DetectorConfig::default());
//! let base = baseline_level(&segs, 0.10);
//! let events = extract_events(&segs, base, 10.0, 6);
//! assert_eq!(events.len(), 1);
//! assert!((events[0].magnitude - 23.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]

pub mod cusum;
pub mod events;
pub mod online;
pub mod rank;
pub mod scratch;
pub mod segment;
pub mod window;

pub use cusum::{
    cusum_bootstrap, cusum_bootstrap_with, cusum_cp_interval, cusum_cp_interval_with, cusum_peak,
    spread_reaches, spread_reaches_with, CusumResult,
};
pub use events::{
    baseline_level, baseline_level_with, event_stats, extract_events, sanitize_events, EventStats,
    ShiftEvent,
};
pub use online::{online_events, OnlineConfig, OnlineDetector, OnlineSnapshot, OnlineVerdict};
pub use rank::{rank_transform, rank_transform_with};
pub use scratch::DetectorScratch;
pub use segment::{detect_change_points, level_segments, segments, DetectorConfig, Segment};
pub use window::{detect_window_shifts, WindowConfig};

/// Common imports.
pub mod prelude {
    pub use crate::cusum::{cusum_bootstrap, cusum_cp_interval, cusum_peak, CusumResult};
    pub use crate::events::{
        baseline_level, event_stats, extract_events, sanitize_events, EventStats, ShiftEvent,
    };
    pub use crate::online::{online_events, OnlineConfig, OnlineDetector, OnlineSnapshot, OnlineVerdict};
    pub use crate::rank::rank_transform;
    pub use crate::scratch::DetectorScratch;
    pub use crate::segment::{detect_change_points, level_segments, segments, DetectorConfig, Segment};
    pub use crate::window::{detect_window_shifts, WindowConfig};
}
