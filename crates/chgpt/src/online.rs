//! Page's sequential CUSUM: online level-shift detection.
//!
//! The paper closes with "we plan to keep analyzing collected TSLP data to
//! delve into the dynamics and causes of congestion" (§8) — continuous
//! monitoring, for which the retrospective Taylor procedure is the wrong
//! tool: it wants the whole series. Page's test is its streaming
//! counterpart: maintain one-sided cumulative sums
//!
//! ```text
//!   S⁺ ← max(0, S⁺ + (x − μ − κ))     (upshift detector)
//!   S⁻ ← max(0, S⁻ + (μ − x − κ))     (downshift detector)
//! ```
//!
//! with reference level `μ` (the running baseline), slack `κ` (half the
//! shift magnitude worth caring about) and alarm threshold `h`. Alarms fire
//! one sample at a time, with O(1) state per link — the shape a production
//! IXP monitor would deploy. The `ablation_detectors` bench compares it to
//! the retrospective pipeline.

use serde::{Deserialize, Serialize};

/// Configuration for the online detector.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Slack per sample, same units as the series (half the target shift
    /// magnitude is the classic choice: 5 for the paper's 10 ms threshold).
    pub kappa: f64,
    /// Alarm threshold on the cumulative statistic. Larger = fewer false
    /// alarms, slower detection. A good default is `5 × kappa`.
    pub h: f64,
    /// Samples of warm-up used to seed the baseline estimate.
    pub warmup: usize,
    /// Exponential baseline adaptation rate once out of an alarm (per
    /// sample). Keeps `μ` tracking slow drifts without chasing shifts.
    pub baseline_gain: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig { kappa: 5.0, h: 25.0, warmup: 12, baseline_gain: 0.005 }
    }
}

/// What one sample did to the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnlineVerdict {
    /// Still learning the baseline.
    Warmup,
    /// Nothing happening.
    Quiet,
    /// An upshift alarm fired at this sample.
    UpshiftAlarm,
    /// A downshift alarm fired at this sample (inside an elevated period,
    /// this marks the end of a congestion event).
    DownshiftAlarm,
    /// Inside an elevated period (after an upshift, before the downshift).
    Elevated,
    /// The sample was non-finite (lost probe): counted as a gap, detector
    /// state untouched. A resident monitor sees these routinely.
    Gap,
}

/// Frozen copy of an [`OnlineDetector`]'s full state, for checkpoint/resume.
///
/// Restoring a snapshot and continuing the sample stream is bit-identical to
/// never having stopped. All fields are public so callers (the monitor
/// service) can serialize them through their own fixed-layout encoding.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineSnapshot {
    /// Detector configuration.
    pub cfg: OnlineConfig,
    /// Running baseline estimate.
    pub baseline: f64,
    /// Warm-up samples consumed so far.
    pub warmup_seen: usize,
    /// Sum of warm-up samples.
    pub warmup_sum: f64,
    /// Upshift cumulative statistic.
    pub s_up: f64,
    /// Downshift cumulative statistic.
    pub s_down: f64,
    /// Inside an elevated period?
    pub elevated: bool,
    /// Baseline captured at the last upshift.
    pub level_before: f64,
    /// Sum of samples while elevated.
    pub elevated_sum: f64,
    /// Count of samples while elevated.
    pub elevated_n: usize,
    /// Non-finite samples seen (state untouched for each).
    pub gaps: u64,
}

/// Streaming level-shift detector (one per monitored link end).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlineDetector {
    cfg: OnlineConfig,
    baseline: f64,
    warmup_seen: usize,
    warmup_sum: f64,
    s_up: f64,
    s_down: f64,
    elevated: bool,
    /// Baseline captured at the last upshift (magnitude estimation).
    level_before: f64,
    /// Running mean of samples while elevated.
    elevated_sum: f64,
    elevated_n: usize,
    /// Non-finite samples seen (each counted, state otherwise untouched).
    gaps: u64,
}

impl OnlineDetector {
    /// Fresh detector.
    pub fn new(cfg: OnlineConfig) -> OnlineDetector {
        OnlineDetector {
            cfg,
            baseline: 0.0,
            warmup_seen: 0,
            warmup_sum: 0.0,
            s_up: 0.0,
            s_down: 0.0,
            elevated: false,
            level_before: 0.0,
            elevated_sum: 0.0,
            elevated_n: 0,
            gaps: 0,
        }
    }

    /// Non-finite samples seen so far.
    pub fn gap_count(&self) -> u64 {
        self.gaps
    }

    /// Freeze the full detector state.
    pub fn snapshot(&self) -> OnlineSnapshot {
        OnlineSnapshot {
            cfg: self.cfg,
            baseline: self.baseline,
            warmup_seen: self.warmup_seen,
            warmup_sum: self.warmup_sum,
            s_up: self.s_up,
            s_down: self.s_down,
            elevated: self.elevated,
            level_before: self.level_before,
            elevated_sum: self.elevated_sum,
            elevated_n: self.elevated_n,
            gaps: self.gaps,
        }
    }

    /// Rebuild a detector from a snapshot; continuing the stream from here
    /// is bit-identical to never having stopped.
    pub fn restore(snap: &OnlineSnapshot) -> OnlineDetector {
        OnlineDetector {
            cfg: snap.cfg,
            baseline: snap.baseline,
            warmup_seen: snap.warmup_seen,
            warmup_sum: snap.warmup_sum,
            s_up: snap.s_up,
            s_down: snap.s_down,
            elevated: snap.elevated,
            level_before: snap.level_before,
            elevated_sum: snap.elevated_sum,
            elevated_n: snap.elevated_n,
            gaps: snap.gaps,
        }
    }

    /// Current baseline estimate.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Is the detector inside an elevated period?
    pub fn is_elevated(&self) -> bool {
        self.elevated
    }

    /// Estimated magnitude of the current elevation (0 when quiet).
    pub fn elevation_estimate(&self) -> f64 {
        if !self.elevated || self.elevated_n == 0 {
            0.0
        } else {
            self.elevated_sum / self.elevated_n as f64 - self.level_before
        }
    }

    /// Feed one sample. Non-finite samples (lost probes) and subnormals
    /// (no real RTT is below ~10⁻³⁰⁸ ms — only a corrupted or fabricated
    /// measurement carries one) are gaps: counted, detector state
    /// untouched, [`OnlineVerdict::Gap`] returned — a resident service
    /// must not die on a dropped response or let garbage bend its
    /// baseline. Zero is a legitimate sample; it is not subnormal.
    pub fn push(&mut self, x: f64) -> OnlineVerdict {
        if !x.is_finite() || x.is_subnormal() {
            self.gaps += 1;
            return OnlineVerdict::Gap;
        }
        if self.warmup_seen < self.cfg.warmup {
            self.warmup_seen += 1;
            self.warmup_sum += x;
            self.baseline = self.warmup_sum / self.warmup_seen as f64;
            return OnlineVerdict::Warmup;
        }
        if self.elevated {
            self.elevated_sum += x;
            self.elevated_n += 1;
            // Look for the downshift back toward the remembered level.
            self.s_down = (self.s_down + (self.elevated_mean() - x - self.cfg.kappa)).max(0.0);
            if self.s_down > self.cfg.h && x < self.elevated_mean() {
                self.elevated = false;
                self.s_down = 0.0;
                self.s_up = 0.0;
                self.baseline = self.level_before;
                self.elevated_sum = 0.0;
                self.elevated_n = 0;
                return OnlineVerdict::DownshiftAlarm;
            }
            return OnlineVerdict::Elevated;
        }
        // Quiet regime: adapt the baseline slowly, watch for upshifts.
        self.baseline += self.cfg.baseline_gain * (x - self.baseline);
        self.s_up = (self.s_up + (x - self.baseline - self.cfg.kappa)).max(0.0);
        if self.s_up > self.cfg.h {
            self.elevated = true;
            self.level_before = self.baseline;
            self.s_up = 0.0;
            self.s_down = 0.0;
            self.elevated_sum = x;
            self.elevated_n = 1;
            return OnlineVerdict::UpshiftAlarm;
        }
        OnlineVerdict::Quiet
    }

    fn elevated_mean(&self) -> f64 {
        if self.elevated_n == 0 {
            self.baseline
        } else {
            self.elevated_sum / self.elevated_n as f64
        }
    }
}

/// Run the detector over a whole series, returning `(upshift, downshift)`
/// sample indices — the offline-compatible view used by tests and benches.
pub fn online_events(series: &[f64], cfg: OnlineConfig) -> Vec<(usize, usize)> {
    let mut det = OnlineDetector::new(cfg);
    let mut out = Vec::new();
    let mut open: Option<usize> = None;
    for (i, &x) in series.iter().enumerate() {
        match det.push(x) {
            OnlineVerdict::UpshiftAlarm => open = Some(i),
            OnlineVerdict::DownshiftAlarm => {
                if let Some(s) = open.take() {
                    out.push((s, i));
                }
            }
            _ => {}
        }
    }
    if let Some(s) = open {
        out.push((s, series.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series(pattern: &[(usize, f64)], noise_amp: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for &(n, level) in pattern {
            for i in 0..n {
                let h = (out.len() as u64 ^ (i as u64) << 7).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let u = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                out.push(level + noise_amp * u);
            }
        }
        out
    }

    #[test]
    fn detects_single_event() {
        let s = step_series(&[(200, 2.0), (60, 25.0), (200, 2.0)], 1.0);
        let ev = online_events(&s, OnlineConfig::default());
        assert_eq!(ev.len(), 1, "{ev:?}");
        let (up, down) = ev[0];
        assert!((198..=215).contains(&up), "up at {up}");
        assert!((258..=280).contains(&down), "down at {down}");
    }

    #[test]
    fn quiet_series_no_alarms() {
        let s = step_series(&[(2000, 3.0)], 1.5);
        assert!(online_events(&s, OnlineConfig::default()).is_empty());
    }

    #[test]
    fn repeated_daily_events() {
        // Five days: elevated samples 100..150 each 288-sample day.
        let mut s = Vec::new();
        for _ in 0..5 {
            s.extend(step_series(&[(100, 2.0), (50, 20.0), (138, 2.0)], 0.8));
        }
        let ev = online_events(&s, OnlineConfig::default());
        assert_eq!(ev.len(), 5, "{ev:?}");
        for (i, (up, down)) in ev.iter().enumerate() {
            assert!((i * 288 + 95..i * 288 + 120).contains(up), "event {i} up {up}");
            assert!((i * 288 + 145..i * 288 + 175).contains(down), "event {i} down {down}");
        }
    }

    #[test]
    fn magnitude_estimate_tracks_shift() {
        let mut det = OnlineDetector::new(OnlineConfig::default());
        for _ in 0..50 {
            det.push(2.0);
        }
        for _ in 0..40 {
            det.push(27.0);
        }
        assert!(det.is_elevated());
        let m = det.elevation_estimate();
        assert!((20.0..27.5).contains(&m), "estimate {m}");
    }

    #[test]
    fn baseline_adapts_to_slow_drift() {
        let mut det = OnlineDetector::new(OnlineConfig::default());
        // Drift from 2 to 6 over 4000 samples: ~0.001/sample, below kappa.
        let mut alarms = 0;
        for i in 0..4000 {
            let x = 2.0 + 4.0 * i as f64 / 4000.0;
            if det.push(x) == OnlineVerdict::UpshiftAlarm {
                alarms += 1;
            }
        }
        assert_eq!(alarms, 0, "slow drift must not alarm");
        assert!(det.baseline() > 4.0, "baseline tracked the drift: {}", det.baseline());
    }

    #[test]
    fn trailing_open_event_closed_at_end() {
        let s = step_series(&[(100, 2.0), (100, 30.0)], 0.5);
        let ev = online_events(&s, OnlineConfig::default());
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].1, s.len());
    }

    #[test]
    fn non_finite_is_a_gap_not_a_panic() {
        let mut det = OnlineDetector::new(OnlineConfig::default());
        for _ in 0..50 {
            det.push(2.0);
        }
        let before = det.snapshot();
        assert_eq!(det.push(f64::NAN), OnlineVerdict::Gap);
        assert_eq!(det.push(f64::INFINITY), OnlineVerdict::Gap);
        assert_eq!(det.push(f64::NEG_INFINITY), OnlineVerdict::Gap);
        let after = det.snapshot();
        assert_eq!(after.gaps, before.gaps + 3);
        assert_eq!(OnlineSnapshot { gaps: before.gaps, ..after }, before, "gaps must not move state");
    }

    #[test]
    fn gaps_do_not_change_events() {
        let clean = step_series(&[(200, 2.0), (60, 25.0), (200, 2.0)], 1.0);
        let mut gappy = clean.clone();
        for i in (0..gappy.len()).step_by(17) {
            gappy.insert(i, f64::NAN);
        }
        let ev_clean = online_events(&clean, OnlineConfig::default());
        let ev_gappy = online_events(&gappy, OnlineConfig::default());
        // Same number of events, same finite-sample ordering.
        assert_eq!(ev_clean.len(), ev_gappy.len());
    }

    #[test]
    fn snapshot_restore_bit_identical() {
        let s = step_series(&[(150, 2.0), (60, 25.0), (150, 2.0)], 1.0);
        let cut = 170;
        let mut straight = OnlineDetector::new(OnlineConfig::default());
        let mut first = OnlineDetector::new(OnlineConfig::default());
        for &x in &s[..cut] {
            straight.push(x);
            first.push(x);
        }
        let mut resumed = OnlineDetector::restore(&first.snapshot());
        for &x in &s[cut..] {
            let a = straight.push(x);
            let b = resumed.push(x);
            assert_eq!(a, b);
        }
        assert_eq!(straight.snapshot(), resumed.snapshot());
        assert_eq!(straight.baseline().to_bits(), resumed.baseline().to_bits());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events are well-formed and ordered for arbitrary finite series.
        #[test]
        fn events_well_formed(series in proptest::collection::vec(0.0f64..100.0, 20..600)) {
            let ev = online_events(&series, OnlineConfig::default());
            for w in ev.windows(2) {
                prop_assert!(w[0].1 <= w[1].0);
            }
            for (up, down) in ev {
                prop_assert!(up < down);
                prop_assert!(down <= series.len());
            }
        }

        /// A planted large step is always caught within a bounded delay.
        #[test]
        fn planted_step_caught(at in 60usize..200, mag in 15.0f64..80.0) {
            let series: Vec<f64> = (0..400).map(|i| if i < at { 2.0 } else { 2.0 + mag }).collect();
            let ev = online_events(&series, OnlineConfig::default());
            prop_assert!(!ev.is_empty());
            let delay = ev[0].0 as i64 - at as i64;
            prop_assert!((0..=10).contains(&delay), "alarm delay {delay}");
        }

        /// Any interleaving of NaN / ±Inf / subnormal junk yields `Gap` for
        /// every junk sample and leaves the event stream identical to the
        /// gap-free projection of the same series (the stronger form of
        /// `gaps_do_not_change_events`: positions are mapped back through
        /// the interleaving, so boundaries must agree exactly, not merely
        /// in count).
        #[test]
        fn junk_interleavings_are_inert(
            clean in proptest::collection::vec(0.5f64..60.0, 30..400),
            junk_at in proptest::collection::vec((0usize..400, 0usize..5), 0..60),
        ) {
            const JUNK: [f64; 5] =
                [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e-310, -4.9e-324];
            let cfg = OnlineConfig::default();

            // Build the interleaved series: insert junk at (clamped) clean
            // positions, keeping the clean subsequence order intact.
            let mut inserts: Vec<(usize, f64)> = junk_at
                .iter()
                .map(|&(pos, kind)| (pos.min(clean.len()), JUNK[kind]))
                .collect();
            inserts.sort_by_key(|&(pos, _)| pos);
            let mut mixed = Vec::with_capacity(clean.len() + inserts.len());
            let mut is_junk = Vec::with_capacity(mixed.capacity());
            let mut next = inserts.iter().peekable();
            for (i, &x) in clean.iter().enumerate() {
                while next.peek().is_some_and(|&&(pos, _)| pos == i) {
                    mixed.push(next.next().unwrap().1);
                    is_junk.push(true);
                }
                mixed.push(x);
                is_junk.push(false);
            }
            for &(_, j) in next {
                mixed.push(j);
                is_junk.push(true);
            }

            // Every junk sample reads Gap; clean samples never do. The
            // detector snapshots must agree except for the gap counter.
            let mut det_clean = OnlineDetector::new(cfg);
            for &x in &clean {
                prop_assert_ne!(det_clean.push(x), OnlineVerdict::Gap);
            }
            let mut det_mixed = OnlineDetector::new(cfg);
            // clean_before[i] = clean samples strictly before mixed[i];
            // one extra entry so a trailing open event maps to clean.len().
            let mut clean_before = Vec::with_capacity(mixed.len() + 1);
            let mut seen = 0usize;
            for (i, &x) in mixed.iter().enumerate() {
                clean_before.push(seen);
                let v = det_mixed.push(x);
                if is_junk[i] {
                    prop_assert_eq!(v, OnlineVerdict::Gap, "junk at {} must be a gap", i);
                } else {
                    prop_assert_ne!(v, OnlineVerdict::Gap);
                    seen += 1;
                }
            }
            clean_before.push(seen);
            let a = det_clean.snapshot();
            let b = det_mixed.snapshot();
            prop_assert_eq!(b.gaps, is_junk.iter().filter(|&&j| j).count() as u64);
            prop_assert_eq!(OnlineSnapshot { gaps: a.gaps, ..b }, a,
                "junk moved detector state");

            // The event stream, projected back to clean positions, is
            // exactly the clean event stream.
            let ev_clean = online_events(&clean, cfg);
            let ev_mixed: Vec<(usize, usize)> = online_events(&mixed, cfg)
                .into_iter()
                .map(|(up, down)| (clean_before[up], clean_before[down]))
                .collect();
            prop_assert_eq!(ev_mixed, ev_clean);
        }
    }
}
