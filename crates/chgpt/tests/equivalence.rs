//! Equivalence suite: the scratch-reuse + early-exit engine must return
//! **byte-identical** change points to the seed implementation.
//!
//! The module below is a frozen, verbatim-in-spirit copy of the detector as
//! it stood before the allocation-free refactor: per-window `to_vec`
//! shuffle buffer, stable-sort rank transform, full-sort median and spread
//! gate, and a bootstrap that always runs every permutation. Everything the
//! refactor touched is re-derived here from first principles so a silent
//! behavior change in the library cannot hide.

use ixp_chgpt::prelude::*;

/// The pre-refactor detector, kept as the ground truth.
mod seed {
    use ixp_chgpt::segment::{DetectorConfig, Segment};
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    pub fn cusum_peak(window: &[f64]) -> (usize, f64) {
        let n = window.len();
        assert!(n >= 2);
        let mean = window.iter().sum::<f64>() / n as f64;
        let mut s = 0.0;
        let (mut smax, mut smin) = (f64::MIN, f64::MAX);
        let (mut best_abs, mut best_idx) = (-1.0, 0);
        for (i, &x) in window.iter().enumerate() {
            s += x - mean;
            if s > smax {
                smax = s;
            }
            if s < smin {
                smin = s;
            }
            if s.abs() > best_abs {
                best_abs = s.abs();
                best_idx = i;
            }
        }
        (best_idx, smax - smin)
    }

    pub fn cusum_bootstrap(window: &[f64], iters: usize, seed: u64) -> (usize, f64, f64) {
        let (split, range) = cusum_peak(window);
        if range == 0.0 {
            return (split, range, 0.0);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut shuffled = window.to_vec();
        let mut below = 0usize;
        for _ in 0..iters {
            shuffled.shuffle(&mut rng);
            let (_, r) = cusum_peak(&shuffled);
            if r < range {
                below += 1;
            }
        }
        (split, range, below as f64 / iters as f64)
    }

    pub fn spread_reaches(window: &[f64], min_magnitude: f64) -> bool {
        if window.len() < 4 {
            return false;
        }
        let mut sorted = window.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let baseline = sorted[sorted.len() / 10];
        let threshold = baseline + min_magnitude;
        let first_above = sorted.partition_point(|&v| v <= threshold);
        sorted.len() - first_above >= 4
    }

    pub fn rank_transform(values: &[f64]) -> Vec<f64> {
        let n = values.len();
        if n == 0 {
            return Vec::new();
        }
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
        let mut ranks = vec![0.0; n];
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && values[idx[j]] == values[idx[i]] {
                j += 1;
            }
            let avg = (i + 1 + j) as f64 / 2.0;
            for &k in &idx[i..j] {
                ranks[k] = avg;
            }
            i = j;
        }
        ranks
    }

    fn median(window: &[f64]) -> f64 {
        let mut v = window.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    pub fn detect_change_points(series: &[f64], cfg: &DetectorConfig) -> Vec<usize> {
        let mut cps = Vec::new();
        let mut stack = vec![(0usize, series.len())];
        while let Some((lo, hi)) = stack.pop() {
            let len = hi - lo;
            if len < 2 * cfg.min_segment.max(1) {
                continue;
            }
            let window = &series[lo..hi];
            if cfg.magnitude_gate > 0.0 && !spread_reaches(window, cfg.magnitude_gate) {
                continue;
            }
            let ranked;
            let data: &[f64] = if cfg.use_ranks {
                ranked = rank_transform(window);
                &ranked
            } else {
                window
            };
            let seed = cfg.seed ^ ((lo as u64) << 32) ^ hi as u64;
            let (split, _, confidence) = cusum_bootstrap(data, cfg.bootstrap_iters, seed);
            if confidence < cfg.confidence {
                if cfg.max_window > 0 && len > cfg.max_window {
                    let mid = lo + len / 2;
                    stack.push((lo, mid));
                    stack.push((mid, hi));
                }
                continue;
            }
            let split = (lo + split + 1).clamp(lo + cfg.min_segment, hi - cfg.min_segment);
            cps.push(split);
            stack.push((lo, split));
            stack.push((split, hi));
        }
        cps.sort_unstable();
        cps
    }

    pub fn level_segments(series: &[f64], cfg: &DetectorConfig) -> Vec<Segment> {
        let cps = detect_change_points(series, cfg);
        if series.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(cps.len() + 1);
        let mut start = 0usize;
        for &cp in &cps {
            // The seed detector predates boundary confidences; the pin below
            // compares (start, end, level) only.
            out.push(Segment { start, end: cp, level: median(&series[start..cp]), confidence: 1.0 });
            start = cp;
        }
        out.push(Segment {
            start,
            end: series.len(),
            level: median(&series[start..]),
            confidence: 1.0,
        });
        out
    }
}

/// Deterministic uniform noise in [-0.5, 0.5) from an avalanche hash.
fn unoise(seed: u64, i: u64) -> f64 {
    let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// The window-shape zoo from the issue: flat, step, diurnal, heavy-tailed.
fn corpus(seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let n = 4 * 288; // four days of 5-minute samples
    let flat: Vec<f64> = (0..n).map(|i| 5.0 + 1.2 * unoise(seed, i)).collect();
    let step: Vec<f64> = (0..n)
        .map(|i| {
            let level = if (n / 3..2 * n / 3).contains(&i) { 24.0 } else { 4.0 };
            level + 1.5 * unoise(seed ^ 1, i)
        })
        .collect();
    let diurnal: Vec<f64> = (0..n)
        .map(|i| {
            let hour = (i % 288) as f64 / 12.0;
            let lift = if (9.0..17.0).contains(&hour) { 18.0 } else { 0.0 };
            3.0 + lift + 2.0 * unoise(seed ^ 2, i)
        })
        .collect();
    let heavy: Vec<f64> = (0..n)
        .map(|i| {
            let u = unoise(seed ^ 3, i) + 0.5; // [0, 1)
            // Pareto-ish tail: most samples near 2 ms, rare 100+ ms spikes.
            2.0 + 2.0 * (1.0 - u).max(1e-6).powf(-0.7)
        })
        .collect();
    vec![("flat", flat), ("step", step), ("diurnal", diurnal), ("heavy", heavy)]
}

#[test]
fn scratch_and_early_exit_match_seed_detector() {
    let mut scratch = DetectorScratch::new();
    for series_seed in [0u64, 7, 42] {
        for (shape, series) in corpus(series_seed) {
            for use_ranks in [true, false] {
                for (gate, iters) in [(0.0, 199usize), (4.0, 199), (4.0, 99)] {
                    let cfg = DetectorConfig {
                        use_ranks,
                        bootstrap_iters: iters,
                        magnitude_gate: gate,
                        seed: series_seed ^ 0xABCD,
                        ..DetectorConfig::default()
                    };
                    let want = seed::detect_change_points(&series, &cfg);
                    // Allocating wrapper (early exit on by default).
                    assert_eq!(
                        detect_change_points(&series, &cfg),
                        want,
                        "{shape} ranks={use_ranks} gate={gate} iters={iters}"
                    );
                    // Scratch reuse across every shape/config in the loop.
                    assert_eq!(
                        scratch.detect_change_points(&series, &cfg),
                        want.as_slice(),
                        "{shape} scratch path diverged"
                    );
                    // Escape hatch: exact confidence, same change points.
                    let exact = DetectorConfig { exact_confidence: true, ..cfg };
                    assert_eq!(detect_change_points(&series, &exact), want);
                }
            }
        }
    }
}

#[test]
fn level_segments_bitwise_identical_to_seed() {
    let mut scratch = DetectorScratch::new();
    for series_seed in [3u64, 11] {
        for (shape, series) in corpus(series_seed) {
            let cfg = DetectorConfig { magnitude_gate: 4.0, ..DetectorConfig::default() };
            // Boundaries and levels must be *bitwise* equal to the seed; the
            // seed detector predates boundary confidences, so the pin
            // compares (start, end, level bits) only.
            let flat = |s: &[Segment]| -> Vec<(usize, usize, u64)> {
                s.iter().map(|g| (g.start, g.end, g.level.to_bits())).collect()
            };
            let want = seed::level_segments(&series, &cfg);
            let got = level_segments(&series, &cfg);
            assert_eq!(flat(&got), flat(&want), "{shape}: segment mismatch");
            assert_eq!(flat(scratch.level_segments(&series, &cfg)), flat(&want), "{shape}");
        }
    }
}

#[test]
fn primitive_equivalence_on_random_windows() {
    let mut scratch = DetectorScratch::new();
    for case in 0..60u64 {
        let n = 8 + (unoise(case, 0).abs() * 500.0) as usize;
        let window: Vec<f64> = (0..n as u64).map(|i| 10.0 + 8.0 * unoise(case, i + 1)).collect();
        // Bootstrap: exact mode must be bitwise identical to the seed.
        let (split, range, confidence) = seed::cusum_bootstrap(&window, 99, case);
        let r = cusum_bootstrap(&window, 99, case);
        assert_eq!((r.split, r.range, r.confidence), (split, range, confidence));
        // Rank transform: unstable index sort is output-identical.
        assert_eq!(rank_transform(&window), seed::rank_transform(&window));
        assert_eq!(
            ixp_chgpt::rank_transform_with(&window, &mut scratch),
            seed::rank_transform(&window).as_slice()
        );
        // Spread gate verdicts.
        for mag in [0.5, 4.0, 20.0] {
            assert_eq!(
                ixp_chgpt::spread_reaches(&window, mag),
                seed::spread_reaches(&window, mag)
            );
        }
    }
}
