//! # tslp-core — time-sequence latency probes, end to end
//!
//! The paper's primary contribution as a reusable pipeline: feed it a set of
//! border links (from `ixp-bdrmap`), it probes both ends of each link every
//! five minutes (`ixp-prober`), detects level shifts with rank-CUSUM
//! change-point analysis (`ixp-chgpt`), applies the §5.2 decision chain —
//! magnitude threshold, ≥30-minute duration, near-side guard, recurring
//! diurnal pattern, record-route symmetry (via `ixp-prober::rr`) — and
//! characterizes each congested link's waveform (`A_w`, `Δt_UD`,
//! sustained/transient) and loss impact.
//!
//! - [`series`] — per-link near/far RTT series with missing-data handling;
//! - [`campaign`] — the year-long probing driver (with the documented
//!   screening optimization; disable for paper-exact probing);
//! - [`health`] — per-link measurement-health classification and the
//!   gap/outage intervals the masked assessment consumes;
//! - [`detect`] — the per-link congestion assessment (masked and unmasked);
//! - [`checkpoint`] — versioned on-disk per-link series checkpoints for
//!   resumable campaigns;
//! - [`lossanalysis`] — 1 pps / 100-probe loss batches and event correlation.

#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod detect;
pub mod health;
pub mod lossanalysis;
pub mod series;

pub use campaign::{
    far_excursions, far_spread_ms, link_key, measure_link, measure_link_in, measure_link_rec,
    measure_link_rec_in, measure_vp, measure_vp_links, measure_vp_links_rec, resolve_threads,
    stream_vp_links, stream_vp_links_rec, CampaignConfig, Screening, TslpProbing, WorkerFailure,
};
pub use checkpoint::{BlobStatus, CheckpointStore};
pub use detect::{
    assess_at_thresholds, assess_link, assess_link_masked, assess_link_masked_rec,
    record_assessment, ArtifactCause, ArtifactCauseKind, AssessConfig, Assessment, EventEvidence,
    NearGuard, TimedEvent, WaveformStats,
};
pub use health::{
    classify_link, classify_link_rec, GapInterval, GapKind, HealthConfig, HealthReport, LinkHealth,
};
pub use lossanalysis::{measure_loss_series, split_by_events, LossCampaignConfig, LossSeries, LossSplit};
pub use series::{LinkSeries, SeriesConfig};

/// Common imports.
pub mod prelude {
    pub use crate::campaign::{measure_link, measure_vp, measure_vp_links, CampaignConfig, Screening};
    pub use crate::checkpoint::{BlobStatus, CheckpointStore};
    pub use crate::detect::{
        assess_at_thresholds, assess_link, assess_link_masked, ArtifactCause, ArtifactCauseKind,
        AssessConfig, Assessment, EventEvidence, NearGuard, TimedEvent, WaveformStats,
    };
    pub use crate::health::{classify_link, HealthConfig, HealthReport, LinkHealth};
    pub use crate::lossanalysis::{
        measure_loss_series, split_by_events, LossCampaignConfig, LossSeries, LossSplit,
    };
    pub use crate::series::{LinkSeries, SeriesConfig};
}
