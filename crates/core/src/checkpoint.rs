//! Versioned on-disk checkpoints for resumable campaigns.
//!
//! A 13-month campaign over thousands of links is hours of wall-clock even
//! simulated; a crash (or a deliberate kill) should not force re-measuring
//! links that already finished. A [`CheckpointStore`] persists each link's
//! measured [`LinkSeries`] (plus its screening verdict) under a key derived
//! from the *measurement identity* — VP, destination, TTLs, expected
//! addresses — and a fingerprint of the campaign configuration. Resuming
//! with the same substrate and config replays finished links from disk and
//! re-measures only the rest; because each link's series is a pure function
//! of `(net, vp, target, cfg)`, a resumed campaign is **bit-identical** to
//! an uninterrupted one at any thread count.
//!
//! The format is a private little-endian binary layout (not JSON: the
//! series are full of `NaN` markers, which JSON cannot represent, and the
//! resume guarantee needs exact `f64` bit patterns):
//!
//! ```text
//! magic      8 B  b"TSLPCKPT"
//! version    4 B  u32 LE (currently 2)
//! config     8 B  u64 LE  campaign fingerprint
//! screened   1 B  0 | 1
//! start      8 B  u64 LE  grid start, µs
//! interval   8 B  u64 LE  grid interval, µs
//! mismatches 8 B  u64 LE  far_addr_mismatches
//! rounds     8 B  u64 LE  n
//! near       8n B f64 bit patterns, u64 LE
//! far        8n B f64 bit patterns, u64 LE
//! path_fp    8n B u64 LE  per-round path fingerprints (version ≥ 2)
//! ```
//!
//! Any mismatch — magic, version, fingerprint, truncation — makes `load`
//! return `None` and the link is simply re-measured: stale checkpoints can
//! cost time, never correctness. In particular version-1 checkpoints (no
//! `path_fp` section) are re-measured rather than replayed with a fabricated
//! path history. Writes go through a temp file + rename so a kill mid-write
//! never leaves a half checkpoint behind.

use crate::series::{LinkSeries, SeriesConfig};
use ixp_prober::tslp::TslpTarget;
use ixp_simnet::node::NodeId;
use ixp_simnet::rng::mix;
use ixp_simnet::time::{SimDuration, SimTime};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"TSLPCKPT";
const VERSION: u32 = 2;

const BLOB_MAGIC: &[u8; 8] = b"TSLPBLOB";
/// Current blob frame version. v2 adds a trailing CRC-32 over the whole
/// frame (header + payload), so torn writes and bit flips are *detected*
/// ([`BlobStatus::Corrupt`]) rather than conflated with an honest miss.
/// v1 frames (no CRC) decode as [`BlobStatus::Stale`] — a miss, never a
/// panic, never trusted payload.
const BLOB_VERSION: u32 = 2;
const BLOB_VERSION_V1: u32 = 1;
/// Fixed frame bytes around a v2 payload: magic(8) + version(4) +
/// fingerprint(8) + length(8) before it, CRC-32(4) after it.
const BLOB_V2_OVERHEAD: usize = 8 + 4 + 8 + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven. Vendored in
/// ~15 lines because the offline dependency set has no checksum crate; the
/// polynomial choice matters less than having *any* end-to-end integrity
/// check on the blob frame.
fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Outcome of a checked blob load: the caller decides how loudly to react.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlobStatus {
    /// Frame intact, fingerprint matches: here is the payload.
    Ok(Vec<u8>),
    /// No blob file under this name.
    Missing,
    /// A structurally valid frame that must not be replayed: wrong
    /// fingerprint (another deployment's state) or an old/unknown frame
    /// version. Rebuild from scratch; do not quarantine — the file is not
    /// damaged, merely not ours.
    Stale,
    /// The frame is damaged: bad magic, torn length, or CRC mismatch.
    /// Quarantine it (see [`CheckpointStore::quarantine_blob`]) so the
    /// evidence survives and the name is free for a fresh checkpoint.
    Corrupt,
}

/// A directory of per-link series checkpoints for one campaign.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: u64,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory. `fingerprint`
    /// binds the stored series to one campaign configuration — use
    /// [`crate::campaign::campaign_fingerprint`]; checkpoints written under
    /// a different fingerprint are ignored on load.
    pub fn new(dir: impl Into<PathBuf>, fingerprint: u64) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, fingerprint })
    }

    /// The checkpoint key for one measurement: a hash of everything that
    /// identifies the target walk (VP, destination, TTL pair, expected
    /// responder addresses).
    pub fn key_for(vp: NodeId, target: &TslpTarget) -> u64 {
        mix(&[
            vp.0 as u64,
            target.dst.0 as u64,
            target.near_ttl as u64,
            target.far_ttl as u64,
            target.near_addr.0 as u64,
            target.far_addr.0 as u64,
        ])
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("link-{key:016x}.ckpt"))
    }

    /// Load a checkpointed `(series, screened)` pair, or `None` when the
    /// checkpoint is missing, corrupt, or from a different campaign config.
    pub fn load(&self, key: u64) -> Option<(LinkSeries, bool)> {
        decode(&fs::read(self.path_for(key)).ok()?, self.fingerprint)
    }

    /// Persist one link's measurement atomically (temp file + rename).
    pub fn store(&self, key: u64, series: &LinkSeries, screened: bool) -> io::Result<()> {
        let bytes = encode(series, screened, self.fingerprint);
        let final_path = self.path_for(key);
        let tmp_path = self.dir.join(format!("link-{key:016x}.tmp"));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)
    }

    /// Persist an opaque named blob atomically (temp file + rename), bound
    /// to this store's fingerprint. The monitor service uses this for its
    /// per-shard detector/health state; the payload layout is the caller's.
    /// The v2 frame carries the payload length and a trailing CRC-32 over
    /// the whole frame, so torn or bit-flipped blobs are *detected* on
    /// load, never decoded.
    ///
    /// `name` must be filesystem-safe (`[A-Za-z0-9._-]`); anything else is
    /// rejected so a caller cannot escape the checkpoint directory.
    pub fn store_blob(&self, name: &str, payload: &[u8]) -> io::Result<()> {
        let final_path = self.blob_path(name)?;
        let mut bytes = Vec::with_capacity(BLOB_V2_OVERHEAD + payload.len());
        bytes.extend_from_slice(BLOB_MAGIC);
        bytes.extend_from_slice(&BLOB_VERSION.to_le_bytes());
        bytes.extend_from_slice(&self.fingerprint.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)
    }

    /// Load a named blob's payload, or `None` when the blob is missing,
    /// corrupt, truncated, or from a different fingerprint — the caller
    /// simply rebuilds the state from scratch. Callers that need to tell
    /// *damage* apart from an honest miss use [`Self::load_blob_checked`].
    pub fn load_blob(&self, name: &str) -> Option<Vec<u8>> {
        match self.load_blob_checked(name) {
            BlobStatus::Ok(payload) => Some(payload),
            _ => None,
        }
    }

    /// Load a named blob, distinguishing every miss mode: a damaged frame
    /// ([`BlobStatus::Corrupt`]) warrants quarantining the file; a missing
    /// or foreign one is a plain rebuild-from-scratch. Never panics on any
    /// byte sequence — truncated, flipped, garbage-prefixed, or v1 frames
    /// all decode to a non-`Ok` status.
    pub fn load_blob_checked(&self, name: &str) -> BlobStatus {
        let Ok(path) = self.blob_path(name) else { return BlobStatus::Missing };
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return BlobStatus::Missing,
            Err(_) => return BlobStatus::Corrupt,
        };
        let mut c = Cursor { buf: &bytes, pos: 0 };
        let Some(magic) = c.take::<8>() else { return BlobStatus::Corrupt };
        if &magic != BLOB_MAGIC {
            return BlobStatus::Corrupt;
        }
        let Some(version) = c.u32() else { return BlobStatus::Corrupt };
        if version == BLOB_VERSION_V1 {
            // v1 had no CRC: a structurally plausible frame is merely
            // stale (decode as a miss), a torn one is corrupt.
            return match (c.u64(), c.u64()) {
                (Some(_fp), Some(n)) if bytes.len() - c.pos == n as usize => BlobStatus::Stale,
                _ => BlobStatus::Corrupt,
            };
        }
        if version != BLOB_VERSION {
            // An unknown (future) version: not ours to judge — a miss.
            return BlobStatus::Stale;
        }
        let (Some(fp), Some(n)) = (c.u64(), c.u64()) else { return BlobStatus::Corrupt };
        let n = n as usize;
        // Exact length frame: header + payload + 4-byte CRC, nothing else.
        if bytes.len() != BLOB_V2_OVERHEAD + n {
            return BlobStatus::Corrupt;
        }
        let body_end = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
        if crc32(&bytes[..body_end]) != stored_crc {
            return BlobStatus::Corrupt;
        }
        if fp != self.fingerprint {
            return BlobStatus::Stale;
        }
        BlobStatus::Ok(bytes[c.pos..body_end].to_vec())
    }

    /// Move a damaged blob aside to a `<file>.corrupt` sidecar, freeing the
    /// name for a fresh checkpoint while keeping the evidence on disk.
    /// Returns the sidecar path, or `None` when there was nothing to move.
    pub fn quarantine_blob(&self, name: &str) -> io::Result<Option<PathBuf>> {
        let path = self.blob_path(name)?;
        if !path.exists() {
            return Ok(None);
        }
        let mut sidecar = path.clone().into_os_string();
        sidecar.push(".corrupt");
        let sidecar = PathBuf::from(sidecar);
        fs::rename(&path, &sidecar)?;
        Ok(Some(sidecar))
    }

    /// The on-disk path a named blob lives at (whether or not it exists):
    /// error messages should name the file, not just the shard.
    pub fn blob_file(&self, name: &str) -> io::Result<PathBuf> {
        self.blob_path(name)
    }

    fn blob_path(&self, name: &str) -> io::Result<PathBuf> {
        let ok = !name.is_empty()
            && name.len() <= 128
            && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
        if !ok {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("blob name {name:?} is not filesystem-safe"),
            ));
        }
        Ok(self.dir.join(format!("blob-{name}.blob")))
    }

    /// Number of checkpoints currently on disk (any fingerprint).
    pub fn len(&self) -> usize {
        count_checkpoints(&self.dir)
    }

    /// True when the directory holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn count_checkpoints(dir: &Path) -> usize {
    fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
                .count()
        })
        .unwrap_or(0)
}

fn encode(series: &LinkSeries, screened: bool, fingerprint: u64) -> Vec<u8> {
    let n = series.len();
    let mut out = Vec::with_capacity(8 + 4 + 8 + 1 + 8 * 4 + 24 * n);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.push(screened as u8);
    out.extend_from_slice(&series.cfg.start.0.to_le_bytes());
    out.extend_from_slice(&series.cfg.interval.as_micros().to_le_bytes());
    out.extend_from_slice(&(series.far_addr_mismatches as u64).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    for v in &series.near_ms {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for v in &series.far_ms {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    // Campaign-produced series always carry one fingerprint per round, but
    // hand-built or windowed series may not — pad with the unknown sentinel
    // so the layout stays exactly 24 bytes per round.
    for i in 0..n {
        out.extend_from_slice(&series.path_fp.get(i).copied().unwrap_or(0).to_le_bytes());
    }
    out
}

/// A tiny cursor over the checkpoint bytes; every read is bounds-checked so
/// a truncated file decodes to `None`, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let end = self.pos.checked_add(N)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        bytes.try_into().ok()
    }
    fn u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }
    fn u64(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }
}

fn decode(bytes: &[u8], fingerprint: u64) -> Option<(LinkSeries, bool)> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if &c.take::<8>()? != MAGIC || c.u32()? != VERSION || c.u64()? != fingerprint {
        return None;
    }
    let screened = match c.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let start = SimTime(c.u64()?);
    let interval = SimDuration::from_micros(c.u64()?);
    let mismatches = c.u64()? as usize;
    let n = c.u64()? as usize;
    // Exact-size check before reading the payload: 24 bytes per round left.
    if bytes.len() - c.pos != 24 * n {
        return None;
    }
    let mut near_ms = Vec::with_capacity(n);
    let mut far_ms = Vec::with_capacity(n);
    let mut path_fp = Vec::with_capacity(n);
    for _ in 0..n {
        near_ms.push(f64::from_bits(c.u64()?));
    }
    for _ in 0..n {
        far_ms.push(f64::from_bits(c.u64()?));
    }
    for _ in 0..n {
        path_fp.push(c.u64()?);
    }
    let series = LinkSeries {
        cfg: SeriesConfig { start, interval },
        near_ms,
        far_ms,
        far_addr_mismatches: mismatches,
        path_fp,
    };
    Some((series, screened))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_simnet::prelude::Ipv4;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tslp-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn target() -> TslpTarget {
        TslpTarget {
            dst: Ipv4::new(10, 0, 2, 2),
            near_ttl: 1,
            far_ttl: 2,
            near_addr: Ipv4::new(10, 0, 0, 1),
            far_addr: Ipv4::new(10, 0, 1, 2),
        }
    }

    fn sample_series() -> LinkSeries {
        let cfg = SeriesConfig::five_minute(SimTime::from_date(2016, 3, 1));
        let mut s = LinkSeries::new(cfg);
        s.near_ms = vec![1.25, f64::NAN, 1.5, f64::NAN];
        s.far_ms = vec![2.5, 3.75, f64::NAN, f64::NAN];
        s.far_addr_mismatches = 2;
        s.path_fp = vec![0xAAAA, 0, 0xBBBB, 0];
        s
    }

    /// Exact equality including NaN positions and bit patterns.
    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::new(&dir, 0xDEAD_BEEF).unwrap();
        let key = CheckpointStore::key_for(NodeId(7), &target());
        assert!(store.load(key).is_none(), "no checkpoint yet");
        let s = sample_series();
        store.store(key, &s, true).unwrap();
        let (got, screened) = store.load(key).expect("stored checkpoint must load");
        assert!(screened);
        assert_eq!(bits(&got.near_ms), bits(&s.near_ms));
        assert_eq!(bits(&got.far_ms), bits(&s.far_ms));
        assert_eq!(got.cfg.start, s.cfg.start);
        assert_eq!(got.cfg.interval, s.cfg.interval);
        assert_eq!(got.far_addr_mismatches, 2);
        assert_eq!(got.path_fp, s.path_fp);
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let dir = tmpdir("fingerprint");
        let store = CheckpointStore::new(&dir, 1).unwrap();
        let key = CheckpointStore::key_for(NodeId(7), &target());
        store.store(key, &sample_series(), false).unwrap();
        let other = CheckpointStore::new(&dir, 2).unwrap();
        assert!(other.load(key).is_none(), "foreign fingerprint must not load");
        assert!(store.load(key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_version_is_a_miss() {
        // A version-1 checkpoint (pre-path_fp layout) must be re-measured,
        // not replayed with a fabricated path history.
        let dir = tmpdir("version");
        let store = CheckpointStore::new(&dir, 5).unwrap();
        let key = CheckpointStore::key_for(NodeId(4), &target());
        store.store(key, &sample_series(), false).unwrap();
        let path = dir.join(format!("link-{key:016x}.ckpt"));
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(key).is_none(), "version 1 must not load");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_truncated_is_a_miss() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::new(&dir, 9).unwrap();
        let key = CheckpointStore::key_for(NodeId(3), &target());
        store.store(key, &sample_series(), false).unwrap();
        let path = dir.join(format!("link-{key:016x}.ckpt"));
        let full = fs::read(&path).unwrap();
        for cut in [0usize, 4, 8, 21, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(store.load(key).is_none(), "truncated at {cut} must miss");
        }
        fs::write(&path, b"garbage that is long enough to cover the header area").unwrap();
        assert!(store.load(key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn blob_roundtrip_and_miss_modes() {
        let dir = tmpdir("blob");
        let store = CheckpointStore::new(&dir, 0x1234).unwrap();
        assert!(store.load_blob("monitor-shard-000").is_none(), "no blob yet");
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        store.store_blob("monitor-shard-000", &payload).unwrap();
        assert_eq!(store.load_blob("monitor-shard-000").as_deref(), Some(&payload[..]));
        // Foreign fingerprint misses; the original still loads.
        let other = CheckpointStore::new(&dir, 0x9999).unwrap();
        assert!(other.load_blob("monitor-shard-000").is_none());
        // Truncation misses rather than panicking.
        let path = dir.join("blob-monitor-shard-000.blob");
        let full = fs::read(&path).unwrap();
        for cut in [0usize, 7, 12, 27, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(store.load_blob("monitor-shard-000").is_none(), "cut {cut}");
        }
        // Unsafe names are rejected outright.
        assert!(store.store_blob("../escape", b"x").is_err());
        assert!(store.store_blob("", b"x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Hand-roll a v1 blob frame (magic, version=1, fingerprint, length,
    /// payload — no CRC), byte-compatible with what PR 8's store wrote.
    fn v1_frame(fingerprint: u64, payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(BLOB_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&fingerprint.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn blob_crc_separates_corrupt_from_stale() {
        let dir = tmpdir("blob-crc");
        let store = CheckpointStore::new(&dir, 0xFEED).unwrap();
        assert_eq!(store.load_blob_checked("shard-0"), BlobStatus::Missing);
        let payload: Vec<u8> = (0..200u8).collect();
        store.store_blob("shard-0", &payload).unwrap();
        assert_eq!(store.load_blob_checked("shard-0"), BlobStatus::Ok(payload.clone()));

        // A valid frame under a foreign fingerprint is stale, not corrupt.
        let other = CheckpointStore::new(&dir, 0xBEEF).unwrap();
        assert_eq!(other.load_blob_checked("shard-0"), BlobStatus::Stale);

        // Any single bit flip anywhere in the frame reads corrupt (or, for
        // flips landing in the version word, stale) — never Ok, no panic.
        let path = store.blob_file("shard-0").unwrap();
        let good = fs::read(&path).unwrap();
        for bit in [0usize, 7, 8 * 8, 8 * 12, 8 * 40, good.len() * 8 - 3] {
            let mut bad = good.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            fs::write(&path, &bad).unwrap();
            let got = store.load_blob_checked("shard-0");
            assert!(
                matches!(got, BlobStatus::Corrupt | BlobStatus::Stale),
                "bit {bit}: {got:?}"
            );
        }
        // Truncation at every header boundary is corrupt.
        for cut in [0usize, 5, 11, 19, 27, good.len() - 1] {
            fs::write(&path, &good[..cut]).unwrap();
            assert_eq!(store.load_blob_checked("shard-0"), BlobStatus::Corrupt, "cut {cut}");
        }
        // Garbage-prefixed: bad magic, corrupt.
        let mut prefixed = b"JUNKJUNK".to_vec();
        prefixed.extend_from_slice(&good);
        fs::write(&path, &prefixed).unwrap();
        assert_eq!(store.load_blob_checked("shard-0"), BlobStatus::Corrupt);

        // Quarantine moves the damaged file to a .corrupt sidecar and
        // frees the name.
        let sidecar = store.quarantine_blob("shard-0").unwrap().expect("file existed");
        assert!(sidecar.to_string_lossy().ends_with(".corrupt"), "{sidecar:?}");
        assert!(sidecar.exists());
        assert_eq!(store.load_blob_checked("shard-0"), BlobStatus::Missing);
        assert!(store.quarantine_blob("shard-0").unwrap().is_none(), "nothing left to move");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_blob_decodes_as_stale_never_panics() {
        let dir = tmpdir("blob-v1");
        let store = CheckpointStore::new(&dir, 0x1111).unwrap();
        let path = store.blob_file("old").unwrap();
        // A well-formed v1 frame — even with the right fingerprint — is a
        // miss: there is no CRC to trust it by.
        fs::write(&path, v1_frame(0x1111, b"payload-from-pr8")).unwrap();
        assert_eq!(store.load_blob_checked("old"), BlobStatus::Stale);
        assert_eq!(store.load_blob("old"), None);
        // A torn v1 frame is corrupt.
        let full = v1_frame(0x1111, b"payload-from-pr8");
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(store.load_blob_checked("old"), BlobStatus::Corrupt);
        // An unknown future version is stale (not ours to judge).
        let mut future = full.clone();
        future[8..12].copy_from_slice(&9u32.to_le_bytes());
        fs::write(&path, &future).unwrap();
        assert_eq!(store.load_blob_checked("old"), BlobStatus::Stale);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_distinguish_targets() {
        let a = CheckpointStore::key_for(NodeId(1), &target());
        let b = CheckpointStore::key_for(NodeId(2), &target());
        let mut t = target();
        t.far_ttl = 3;
        let c = CheckpointStore::key_for(NodeId(1), &t);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

/// Fuzz-style decode corpus: whatever bytes land in a blob file — truncated
/// frames, bit flips, garbage prefixes, raw garbage, v1 relics — the
/// checked loader must return a non-`Ok` status (or, for an untouched
/// frame, the exact payload) and must never panic. One store per process
/// (shared temp dir, per-case file names) keeps the suite fast.
#[cfg(test)]
mod blob_proptests {
    use super::*;
    use proptest::prelude::*;

    fn scratch_store() -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join(format!("tslp-blob-props-{}", std::process::id()));
        CheckpointStore::new(dir, 0xC0FF_EE00).unwrap()
    }

    proptest! {
        /// Truncating a stored v2 frame anywhere short of full length is
        /// Corrupt; full length is the exact payload.
        #[test]
        fn truncation_is_detected(
            payload in proptest::collection::vec(any::<u8>(), 0..200),
            cut_frac in 0.0f64..1.0,
        ) {
            let store = scratch_store();
            store.store_blob("trunc", &payload).unwrap();
            let path = store.blob_file("trunc").unwrap();
            let full = fs::read(&path).unwrap();
            let cut = ((full.len() as f64) * cut_frac) as usize;
            fs::write(&path, &full[..cut.min(full.len() - 1)]).unwrap();
            prop_assert_eq!(store.load_blob_checked("trunc"), BlobStatus::Corrupt);
            fs::write(&path, &full).unwrap();
            prop_assert_eq!(store.load_blob_checked("trunc"), BlobStatus::Ok(payload));
        }

        /// Any single bit flip is caught: never Ok, never a panic. Flips in
        /// the version word may read Stale (an unknown version is a miss);
        /// everything else must fail the CRC and read Corrupt.
        #[test]
        fn bitflips_are_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..200),
            bit_frac in 0.0f64..1.0,
        ) {
            let store = scratch_store();
            store.store_blob("flip", &payload).unwrap();
            let path = store.blob_file("flip").unwrap();
            let mut bytes = fs::read(&path).unwrap();
            let bit = ((bytes.len() * 8 - 1) as f64 * bit_frac) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            fs::write(&path, &bytes).unwrap();
            let got = store.load_blob_checked("flip");
            let in_version_word = (8..12).contains(&(bit / 8));
            if in_version_word {
                prop_assert!(
                    matches!(got, BlobStatus::Corrupt | BlobStatus::Stale),
                    "version-word flip: {:?}", got
                );
            } else {
                prop_assert_eq!(got, BlobStatus::Corrupt);
            }
        }

        /// Arbitrary garbage — including garbage that starts with the real
        /// magic, or prefixes a real frame — never decodes Ok, never panics.
        #[test]
        fn garbage_never_decodes(
            garbage in proptest::collection::vec(any::<u8>(), 0..300),
            prepend in any::<bool>(),
            with_magic in any::<bool>(),
        ) {
            let store = scratch_store();
            store.store_blob("junk", b"real payload").unwrap();
            let path = store.blob_file("junk").unwrap();
            let real = fs::read(&path).unwrap();
            let mut bytes = Vec::new();
            if with_magic {
                bytes.extend_from_slice(BLOB_MAGIC);
            }
            bytes.extend_from_slice(&garbage);
            if prepend {
                bytes.extend_from_slice(&real);
            }
            fs::write(&path, &bytes).unwrap();
            let got = store.load_blob_checked("junk");
            prop_assert!(!matches!(got, BlobStatus::Ok(_)), "{:?}", got);
        }

        /// v1 frames — intact, truncated, or flipped — are a miss or
        /// corrupt, never Ok, never a panic, with or without the right
        /// fingerprint.
        #[test]
        fn v1_frames_never_decode(
            payload in proptest::collection::vec(any::<u8>(), 0..200),
            ours in any::<bool>(),
            cut_frac in 0.0f64..1.0,
        ) {
            let store = scratch_store();
            let fp: u64 = if ours { 0xC0FF_EE00 } else { 0x0BAD_F00D };
            let cut_frac = if ours { 1.0 } else { cut_frac }; // intact frames covered too
            let mut bytes = Vec::new();
            bytes.extend_from_slice(BLOB_MAGIC);
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.extend_from_slice(&fp.to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&payload);
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let path = store.blob_file("v1").unwrap();
            fs::write(&path, &bytes[..cut.min(bytes.len())]).unwrap();
            let got = store.load_blob_checked("v1");
            prop_assert!(
                matches!(got, BlobStatus::Stale | BlobStatus::Corrupt),
                "{:?}", got
            );
        }
    }
}
