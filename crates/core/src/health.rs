//! Link health classification — the measurement-integrity layer under the
//! §5.2 detector.
//!
//! The paper's central methodological risk is mistaking *measurement
//! misbehaving* for *links misbehaving*: ICMP rate limiting, router
//! maintenance, loopback-sourced responses, and decommissioned far routers
//! all produce RTT-series artifacts that a naive level-shift detector can
//! read as congestion. This module inspects one [`LinkSeries`] — before any
//! change-point analysis — and produces a [`HealthReport`]: a per-window and
//! overall [`LinkHealth`] label plus the structured gap/outage intervals the
//! masked assessment ([`crate::detect::assess_link_masked`]) uses to
//! attribute suspicious level shifts to measurement artifacts instead of
//! congestion.
//!
//! The evidence is deliberately cheap (one O(n) pass, no bootstrap):
//!
//! - **validity** — fraction of rounds with a far answer;
//! - **loss-run statistics** — maximal runs of consecutive unanswered
//!   rounds; long runs become [`GapInterval`]s (bounded gaps or a trailing
//!   outage), the signature of link flaps, maintenance windows, and ACL
//!   pushes;
//! - **scattered loss + inter-arrival evidence** — many short, spread-out
//!   loss runs with semi-regular answered spacing are the signature of a
//!   token-bucket ICMP rate limiter, not of queueing;
//! - **address consistency** — far responses arriving from an unexpected
//!   source (loopback-sourced routers, path changes under the measurement).

use crate::series::LinkSeries;
use ixp_obs::{LinkEvent, LinkKey, Recorder};
use ixp_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Data-quality verdict for a link (per window, and overall).
///
/// Ordered worst-last so `max` picks the more alarming label when two
/// windows disagree.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum LinkHealth {
    /// Measurement behaved: answers on schedule, from the expected address.
    Clean,
    /// Long runs of unanswered rounds (flaps, maintenance windows) — the
    /// series carries [`GapInterval`]s that detection must mask around.
    Gappy,
    /// Many short, scattered loss runs with semi-regular survivors: the
    /// far router is rate-limiting ICMP, so validity is a property of the
    /// limiter, not of the link.
    RateLimited,
    /// The TTL-ladder path fingerprint changed mid-series: a routing event
    /// re-converged the forwarding path under the measurement, so level
    /// shifts coincident with the change are path artifacts, not queueing.
    /// The answered samples themselves are trustworthy — only shifts at the
    /// change instants must be attributed to routing.
    PathChange,
    /// Far responses repeatedly arrive from an unexpected address
    /// (loopback-sourced router or a path change under the measurement).
    AddrUnstable,
    /// Essentially no far answers (decommissioned router, permanent ACL),
    /// or the far side died partway and never came back.
    Silent,
}

impl LinkHealth {
    /// Stable lowercase token for tables and JSON reports.
    pub fn token(self) -> &'static str {
        match self {
            LinkHealth::Clean => "clean",
            LinkHealth::Gappy => "gappy",
            LinkHealth::RateLimited => "rate-limited",
            LinkHealth::PathChange => "path-change",
            LinkHealth::AddrUnstable => "addr-unstable",
            LinkHealth::Silent => "silent",
        }
    }
}

/// What a long loss run means.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GapKind {
    /// Bounded: answers resume after the run.
    Gap,
    /// Unbounded: the run extends to the end of the series.
    Outage,
}

/// One structured interval of consecutive unanswered rounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GapInterval {
    /// First unanswered round index.
    pub start: usize,
    /// One past the last unanswered round index.
    pub end: usize,
    /// Bounded gap or trailing outage.
    pub kind: GapKind,
}

impl GapInterval {
    /// Length in rounds.
    pub fn len(&self) -> usize {
        self.end - self.start
    }
    /// True when the interval covers no rounds.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Classification thresholds. Durations are wall-clock, so the same config
/// works on the 5-minute full-fidelity grid and the hourly screening grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Loss runs at least this long become [`GapInterval`]s (the paper's
    /// 30-minute minimum event duration: anything shorter cannot mask a
    /// reportable shift anyway).
    pub min_gap: SimDuration,
    /// Scattered (non-gap) loss above this fraction of the answered-eligible
    /// rounds reads as rate limiting.
    pub max_scattered_loss: f64,
    /// Answered-address consistency below this reads as `AddrUnstable`.
    pub min_addr_consistency: f64,
    /// Overall validity below this reads as `Silent`.
    pub silent_validity: f64,
    /// A trailing outage covering at least this fraction of the series also
    /// reads as `Silent` (the GHANATEL shutdown pattern).
    pub silent_tail_fraction: f64,
    /// Window length for the per-window labels.
    pub window: SimDuration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            min_gap: SimDuration::from_mins(30),
            max_scattered_loss: 0.25,
            min_addr_consistency: 0.90,
            silent_validity: 0.05,
            silent_tail_fraction: 0.35,
            window: SimDuration::from_days(1),
        }
    }
}

impl HealthConfig {
    /// `min_gap` in rounds on a given grid (at least 2, so a single missed
    /// round never counts as an outage even on a coarse screening grid).
    pub fn min_gap_rounds(&self, interval: SimDuration) -> usize {
        ((self.min_gap.as_micros() / interval.as_micros().max(1)) as usize).max(2)
    }

    /// Window length in rounds on a given grid.
    pub fn window_rounds(&self, interval: SimDuration) -> usize {
        ((self.window.as_micros() / interval.as_micros().max(1)) as usize).max(1)
    }
}

/// The measurement-integrity summary for one link.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HealthReport {
    /// Overall label (the worst evidence wins; see [`classify_link`]).
    pub overall: LinkHealth,
    /// One label per [`HealthConfig::window`]-sized window of the series.
    pub windows: Vec<LinkHealth>,
    /// Far-side gap/outage intervals, in round-index space, ascending.
    pub gaps: Vec<GapInterval>,
    /// Near-side gap/outage intervals (for the extended near guard).
    pub near_gaps: Vec<GapInterval>,
    /// Fraction of rounds with a far answer.
    pub far_validity: f64,
    /// Fraction of answered far rounds from the expected address.
    pub addr_consistency: f64,
    /// Longest far loss run, in rounds.
    pub longest_loss_run: usize,
    /// Fraction of gap-exempt rounds lost to scattered (short-run) loss.
    pub scattered_loss: f64,
    /// Mean spacing of answered far rounds, in rounds (1.0 = every round).
    pub mean_interarrival: f64,
    /// Round indices where the TTL-ladder path fingerprint changed
    /// ([`LinkSeries::path_change_rounds`]), ascending.
    pub path_changes: Vec<usize>,
}

impl HealthReport {
    /// A report for an empty series: silent, no evidence.
    pub fn empty() -> HealthReport {
        HealthReport {
            overall: LinkHealth::Silent,
            windows: Vec::new(),
            gaps: Vec::new(),
            near_gaps: Vec::new(),
            far_validity: 0.0,
            addr_consistency: 1.0,
            longest_loss_run: 0,
            scattered_loss: 0.0,
            mean_interarrival: f64::INFINITY,
            path_changes: Vec::new(),
        }
    }

    /// A trivially clean report (what the unmasked assessment assumes).
    pub fn clean() -> HealthReport {
        HealthReport { overall: LinkHealth::Clean, far_validity: 1.0, ..HealthReport::empty() }
    }

    /// Does round `i` fall inside (or exactly on the edge of) a far gap,
    /// extended by `slack` rounds on both sides?
    pub fn near_far_gap(&self, i: usize, slack: usize) -> bool {
        self.gaps
            .iter()
            .any(|g| i + slack >= g.start && i < g.end.saturating_add(slack))
    }

    /// Total rounds covered by far gaps.
    pub fn gap_rounds(&self) -> usize {
        self.gaps.iter().map(|g| g.len()).sum()
    }

    /// Is round `i` within `slack` rounds of a recorded path change? A
    /// change at round `c` taints `[c - slack, c + slack]`: the shift the
    /// detector sees can land a few rounds off the fingerprint transition
    /// when the transition round itself went unanswered.
    pub fn near_path_change(&self, i: usize, slack: usize) -> bool {
        self.path_changes
            .iter()
            .any(|&c| i + slack >= c && i <= c.saturating_add(slack))
    }

    /// Gap intervals mapped to campaign time on `series`' grid.
    pub fn gap_times(&self, series: &LinkSeries) -> Vec<(SimTime, SimTime, GapKind)> {
        self.gaps
            .iter()
            .map(|g| (series.timestamp(g.start), series.timestamp(g.end), g.kind))
            .collect()
    }
}

/// Collect maximal runs of non-finite samples at least `min_run` long.
fn loss_runs(values: &[f64], min_run: usize) -> (Vec<GapInterval>, usize) {
    let mut gaps = Vec::new();
    let mut longest = 0usize;
    let mut run_start: Option<usize> = None;
    for (i, v) in values.iter().enumerate() {
        match (run_start, v.is_finite()) {
            (None, false) => run_start = Some(i),
            (Some(s), true) => {
                let len = i - s;
                longest = longest.max(len);
                if len >= min_run {
                    gaps.push(GapInterval { start: s, end: i, kind: GapKind::Gap });
                }
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        let len = values.len() - s;
        longest = longest.max(len);
        if len >= min_run {
            gaps.push(GapInterval { start: s, end: values.len(), kind: GapKind::Outage });
        }
    }
    (gaps, longest)
}

/// Label one slice of the far series given its gap intervals (already
/// clipped to the slice) and address evidence.
#[allow(clippy::too_many_arguments)]
fn label(
    rounds: usize,
    answered: usize,
    gap_rounds: usize,
    has_outage: bool,
    outage_rounds: usize,
    addr_consistency: f64,
    path_changes: usize,
    cfg: &HealthConfig,
) -> LinkHealth {
    if rounds == 0 {
        return LinkHealth::Clean;
    }
    let validity = answered as f64 / rounds as f64;
    if validity < cfg.silent_validity
        || (has_outage && outage_rounds as f64 / rounds as f64 >= cfg.silent_tail_fraction)
    {
        return LinkHealth::Silent;
    }
    if addr_consistency < cfg.min_addr_consistency {
        return LinkHealth::AddrUnstable;
    }
    // A fingerprinted path change outranks loss-shape evidence: the series
    // is a concatenation of different paths, so its level structure cannot
    // be read as one link's queue without masking the change instants.
    if path_changes > 0 {
        return LinkHealth::PathChange;
    }
    // Scattered loss: unanswered rounds not explained by gap intervals,
    // relative to the rounds outside gaps. Gaps are structural (flaps,
    // maintenance); scattered loss across many short runs is a limiter.
    let outside = rounds - gap_rounds;
    let scattered = (rounds - answered).saturating_sub(gap_rounds);
    if outside > 0 && scattered as f64 / outside as f64 > cfg.max_scattered_loss {
        return LinkHealth::RateLimited;
    }
    if gap_rounds > 0 {
        return LinkHealth::Gappy;
    }
    LinkHealth::Clean
}

/// Classify one link's measurement health.
///
/// Evidence precedence (worst wins): `Silent` (no data, or a long trailing
/// outage) > `AddrUnstable` (answers cannot be trusted to come from the
/// link) > `PathChange` (the series spans more than one forwarding path) >
/// `RateLimited` (validity is shaped by the limiter) > `Gappy` (usable, but
/// shifts near gap edges are suspect) > `Clean`.
pub fn classify_link(series: &LinkSeries, cfg: &HealthConfig) -> HealthReport {
    let n = series.len();
    if n == 0 {
        return HealthReport::empty();
    }
    let interval = series.cfg.interval;
    let min_run = cfg.min_gap_rounds(interval);
    let (gaps, longest) = loss_runs(&series.far_ms, min_run);
    let (near_gaps, _) = loss_runs(&series.near_ms, min_run);

    let answered = series.far_ms.iter().filter(|v| v.is_finite()).count();
    let far_validity = answered as f64 / n as f64;
    let addr_consistency = series.far_addr_consistency();
    let path_changes = series.path_change_rounds();
    let gap_rounds: usize = gaps.iter().map(|g| g.len()).sum();
    let outage_rounds: usize =
        gaps.iter().filter(|g| g.kind == GapKind::Outage).map(|g| g.len()).sum();
    let scattered = (n - answered).saturating_sub(gap_rounds);
    let outside = n - gap_rounds;
    let scattered_loss = if outside > 0 { scattered as f64 / outside as f64 } else { 0.0 };
    let mean_interarrival = if answered > 0 { n as f64 / answered as f64 } else { f64::INFINITY };

    // Per-window labels. Address mismatches are only counted series-wide
    // (LinkSeries does not keep per-round responder records), so windows
    // inherit the series-wide consistency — good enough to locate loss
    // structure in time, which is what the windows are for.
    let wlen = cfg.window_rounds(interval);
    let mut windows = Vec::with_capacity(n.div_ceil(wlen));
    let mut w = 0usize;
    while w < n {
        let hi = (w + wlen).min(n);
        let rounds = hi - w;
        let answered_w = series.far_ms[w..hi].iter().filter(|v| v.is_finite()).count();
        let mut gap_w = 0usize;
        let mut outage_w = 0usize;
        let mut has_outage = false;
        for g in &gaps {
            let lo = g.start.max(w);
            let gh = g.end.min(hi);
            if gh > lo {
                gap_w += gh - lo;
                if g.kind == GapKind::Outage {
                    has_outage = true;
                    outage_w += gh - lo;
                }
            }
        }
        let changes_w = path_changes.iter().filter(|&&c| (w..hi).contains(&c)).count();
        windows.push(label(
            rounds,
            answered_w,
            gap_w,
            has_outage,
            outage_w,
            addr_consistency,
            changes_w,
            cfg,
        ));
        w = hi;
    }

    let has_outage = gaps.iter().any(|g| g.kind == GapKind::Outage);
    let overall = label(
        n,
        answered,
        gap_rounds,
        has_outage,
        outage_rounds,
        addr_consistency,
        path_changes.len(),
        cfg,
    );

    HealthReport {
        overall,
        windows,
        gaps,
        near_gaps,
        far_validity,
        addr_consistency,
        longest_loss_run: longest,
        scattered_loss,
        mean_interarrival,
        path_changes,
    }
}

/// [`classify_link`] with telemetry: the overall class lands in a
/// `health_<class>` counter, the gap burden in `health_gap_rounds`, and the
/// class token in the link's ledger. The report itself is unchanged.
pub fn classify_link_rec<R: Recorder>(
    series: &LinkSeries,
    cfg: &HealthConfig,
    rec: &R,
    key: LinkKey,
) -> HealthReport {
    let rep = classify_link(series, cfg);
    if rec.enabled() {
        rec.add("links_classified", 1);
        rec.add(&format!("health_{}", rep.overall.token()), 1);
        rec.add("health_gap_rounds", rep.gap_rounds() as u64);
        rec.link_event(key, LinkEvent::Health(rep.overall.token()));
        if !rep.path_changes.is_empty() {
            rec.add("health_path_change_total", rep.path_changes.len() as u64);
            rec.link_event(key, LinkEvent::PathChanges(rep.path_changes.len() as u64));
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesConfig;
    use ixp_prober::tslp::TslpSample;
    use ixp_simnet::time::SimTime;

    /// Build a series from a per-round far closure; near side always answers.
    fn series(rounds: usize, far: impl Fn(usize) -> Option<f64>, addr_ok: impl Fn(usize) -> bool) -> LinkSeries {
        let cfg = SeriesConfig::five_minute(SimTime::from_date(2016, 3, 1));
        let mut s = LinkSeries::new(cfg);
        for i in 0..rounds {
            let f = far(i);
            s.push(&TslpSample {
                t: cfg.timestamp(i),
                near: Some(SimDuration::from_millis(1)),
                far: f.map(SimDuration::from_secs_f64),
                near_addr_ok: true,
                far_addr_ok: f.is_some() && addr_ok(i),
                path_fp: if f.is_some() { 0xFEED } else { 0 },
            });
        }
        s
    }

    #[test]
    fn clean_series_is_clean() {
        let s = series(288 * 7, |_| Some(0.002), |_| true);
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::Clean);
        assert!(h.gaps.is_empty());
        assert!(h.windows.iter().all(|&w| w == LinkHealth::Clean));
        assert_eq!(h.far_validity, 1.0);
    }

    #[test]
    fn long_runs_become_gaps() {
        // A 3-hour outage on day 2 and a 2-round blip on day 4.
        let s = series(
            288 * 7,
            |i| {
                let in_outage = (288 + 40..288 + 76).contains(&i);
                let blip = i == 288 * 3 + 5 || i == 288 * 3 + 6;
                if in_outage || blip { None } else { Some(0.002) }
            },
            |_| true,
        );
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::Gappy);
        assert_eq!(h.gaps.len(), 1, "{:?}", h.gaps);
        assert_eq!(h.gaps[0], GapInterval { start: 328, end: 364, kind: GapKind::Gap });
        assert_eq!(h.longest_loss_run, 36);
        // Day 2's window is gappy, the rest clean (the blip is too short).
        assert_eq!(h.windows[1], LinkHealth::Gappy);
        assert_eq!(h.windows[3], LinkHealth::Clean);
    }

    #[test]
    fn trailing_outage_is_silent() {
        // Far answers for 3 days of 10, then never again.
        let s = series(2880, |i| if i < 864 { Some(0.002) } else { None }, |_| true);
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::Silent);
        assert_eq!(h.gaps.last().unwrap().kind, GapKind::Outage);
        assert_eq!(h.gaps.last().unwrap().end, 2880);
        assert_eq!(h.windows.last(), Some(&LinkHealth::Silent));
        // Early windows stay clean: the link was healthy then.
        assert_eq!(h.windows[0], LinkHealth::Clean);
    }

    #[test]
    fn scattered_loss_reads_as_rate_limited() {
        // Every third round answered: limiter-shaped loss, no long runs.
        let s = series(2880, |i| if i % 3 == 0 { Some(0.002) } else { None }, |_| true);
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::RateLimited);
        assert!(h.gaps.is_empty(), "short runs must not become gaps");
        assert!((h.scattered_loss - 2.0 / 3.0).abs() < 1e-9);
        assert!((h.mean_interarrival - 3.0).abs() < 1e-9);
    }

    #[test]
    fn path_change_outranks_loss_shape_but_not_silence() {
        // A mid-campaign fingerprint flip labels the series PathChange even
        // though every round answered cleanly.
        let mut s = series(2880, |_| Some(0.002), |_| true);
        for fp in s.path_fp[1500..].iter_mut() {
            *fp = 0xBEEF;
        }
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::PathChange);
        assert_eq!(h.path_changes, vec![1500]);
        // Only the window containing the change is tainted.
        assert_eq!(h.windows[1500 / 288], LinkHealth::PathChange);
        assert_eq!(h.windows[0], LinkHealth::Clean);
        assert_eq!(h.windows.last(), Some(&LinkHealth::Clean));
        assert!(h.near_path_change(1500, 0));
        assert!(h.near_path_change(1494, 6) && h.near_path_change(1506, 6));
        assert!(!h.near_path_change(1493, 6));

        // Silence still wins: a path change cannot rescue a dead series.
        let mut dead = series(2880, |i| (i < 100).then_some(0.002), |_| true);
        if let Some(fp) = dead.path_fp.get_mut(50) {
            *fp = 0xBEEF;
        }
        assert_eq!(classify_link(&dead, &HealthConfig::default()).overall, LinkHealth::Silent);
    }

    #[test]
    fn rate_limited_rounds_cannot_fake_a_path_change() {
        // Every third round answered (limiter-shaped): the unknown rounds
        // carry fingerprint 0, and the surviving rounds agree — so the label
        // stays RateLimited, not PathChange.
        let s = series(2880, |i| if i % 3 == 0 { Some(0.002) } else { None }, |_| true);
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::RateLimited);
        assert!(h.path_changes.is_empty());
    }

    #[test]
    fn addr_mismatches_read_as_unstable() {
        let s = series(2880, |_| Some(0.002), |_| false);
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::AddrUnstable);
        assert!(h.addr_consistency < 0.1);
    }

    #[test]
    fn silence_beats_everything() {
        let s = series(2880, |_| None, |_| true);
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::Silent);
        assert_eq!(h.far_validity, 0.0);
        assert_eq!(classify_link(&LinkSeries::new(s.cfg), &HealthConfig::default()).overall, LinkHealth::Silent);
    }

    #[test]
    fn near_gaps_tracked_separately() {
        let cfg = SeriesConfig::five_minute(SimTime::from_date(2016, 3, 1));
        let mut s = LinkSeries::new(cfg);
        for i in 0..2880usize {
            let near_up = !(100..200).contains(&i);
            s.push(&TslpSample {
                t: cfg.timestamp(i),
                near: near_up.then_some(SimDuration::from_millis(1)),
                far: Some(SimDuration::from_millis(2)),
                near_addr_ok: near_up,
                far_addr_ok: true,
                path_fp: if near_up { 0xFEED } else { 0 },
            });
        }
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.overall, LinkHealth::Clean, "near loss must not taint far health");
        assert_eq!(h.near_gaps, vec![GapInterval { start: 100, end: 200, kind: GapKind::Gap }]);
    }

    #[test]
    fn gap_edges_and_slack() {
        let h = HealthReport {
            gaps: vec![GapInterval { start: 100, end: 150, kind: GapKind::Gap }],
            ..HealthReport::clean()
        };
        assert!(h.near_far_gap(100, 0));
        assert!(h.near_far_gap(149, 0));
        assert!(!h.near_far_gap(150, 0), "end is exclusive without slack");
        assert!(h.near_far_gap(155, 6));
        assert!(h.near_far_gap(94, 6));
        assert!(!h.near_far_gap(93, 6));
    }

    #[test]
    fn coarse_grid_uses_duration_thresholds() {
        // Hourly screening grid: a 2-round (2-hour) run is already a gap.
        let cfg = SeriesConfig { start: SimTime::from_date(2016, 3, 1), interval: SimDuration::from_hours(1) };
        let mut s = LinkSeries::new(cfg);
        for i in 0..240usize {
            let up = !(50..52).contains(&i);
            s.push(&TslpSample {
                t: cfg.timestamp(i),
                near: Some(SimDuration::from_millis(1)),
                far: up.then_some(SimDuration::from_millis(2)),
                near_addr_ok: true,
                far_addr_ok: up,
                path_fp: if up { 0xFEED } else { 0 },
            });
        }
        let h = classify_link(&s, &HealthConfig::default());
        assert_eq!(h.gaps, vec![GapInterval { start: 50, end: 52, kind: GapKind::Gap }]);
        assert_eq!(h.overall, LinkHealth::Gappy);
    }
}
