//! Per-link congestion assessment — §5.2 end to end.
//!
//! Given a link's near/far series, the assessment:
//!
//! 1. runs the rank-CUSUM level-shift detector on the far series (5-minute
//!    samples, shifts lasting ≥ 30 minutes);
//! 2. extracts shift events above the magnitude threshold (Table 1 sweeps
//!    5/10/15/20 ms) and sanitizes them;
//! 3. guards on the **near** series: coincident near-side shifts mean "the
//!    observed congestion was not at the targeted link";
//! 4. classifies **recurring diurnal patterns** by folding event coverage
//!    over the time of day;
//! 5. characterizes the waveform: average magnitude `A_w`, average
//!    up→down width `Δt_UD`, and the sustained/transient label (§6.1).
//!
//! The `*_masked` entry points additionally take a [`HealthReport`] from
//! [`crate::health`] and attribute level shifts that begin or end inside
//! (or within [`AssessConfig::mask_slack`] of) a far-side gap/outage
//! interval — or within slack of a fingerprinted **path change** (a routing
//! event re-converged the forwarding path under the measurement) — to
//! **measurement artifacts** instead of congestion: they land in
//! [`Assessment::artifacts`], never in [`Assessment::events`], and do not
//! contribute to the flagged/diurnal/congested verdicts. Shifts on a stable
//! path are untouched, so campaigns without routing events keep verdicts
//! bit-identical. The near-side guard is extended the same way: far events
//! coincident with *near-side* gaps are vetoed as
//! [`NearGuard::CoincidentGaps`]. The unmasked entry points behave exactly
//! as before (an always-clean mask).

use crate::health::{HealthReport, LinkHealth};
use crate::series::LinkSeries;
use ixp_chgpt::events::{event_stats, extract_events, sanitize_events, ShiftEvent};
use ixp_chgpt::scratch::DetectorScratch;
use ixp_chgpt::segment::{DetectorConfig, Segment};
use ixp_obs::{LinkEvent, LinkKey, Recorder, TraceEvent, TraceKind};
use ixp_simnet::time::{SimDuration, SimTime, MICROS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Assessment tuning (defaults = the paper's choices).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AssessConfig {
    /// Level-shift detector settings.
    pub detector: DetectorConfig,
    /// Magnitude threshold in ms for labeling "potentially congested"
    /// (the paper settles on 10 ms after the Table 1 sensitivity study).
    pub threshold_ms: f64,
    /// Minimum shift duration (30 minutes).
    pub min_event: SimDuration,
    /// Merge events separated by gaps up to this long before measuring
    /// widths (the §5.2 "sanitization").
    pub sanitize_gap: SimDuration,
    /// Baseline quantile for the reference level.
    pub baseline_quantile: f64,
    /// A diurnal verdict needs events on at least this many distinct days.
    pub min_event_days: usize,
    /// Significance level for the Rayleigh test on event onset
    /// times-of-day. "Recurring diurnal pattern" requires rejecting
    /// onset-uniformity at this level: `exp(−n·R²) < α`, with `R` the
    /// circular mean resultant length over `n` events. A waveform rising at
    /// a consistent hour every day rejects immediately; sporadic level
    /// shifts (R ≈ 1/√n) essentially never do.
    pub diurnal_alpha: f64,
    /// Far series must be at least this complete for a clean verdict.
    pub min_validity: f64,
    /// A near-side event overlapping this fraction of far events (in time)
    /// disqualifies the link ("congestion was not at the targeted link").
    pub near_overlap_limit: f64,
    /// Events continuing into the last this-many days of valid data make
    /// the congestion *sustained*.
    pub sustain_tail: SimDuration,
    /// Health classification thresholds for the masked assessment.
    pub health: crate::health::HealthConfig,
    /// A level shift beginning or ending within this long of a gap/outage
    /// boundary is attributed to the gap (a measurement artifact), not to
    /// congestion. Matches the 30-minute minimum event duration: the
    /// detector cannot place a boundary more precisely than that anyway.
    pub mask_slack: SimDuration,
}

impl Default for AssessConfig {
    fn default() -> Self {
        AssessConfig {
            detector: DetectorConfig { magnitude_gate: 4.0, ..DetectorConfig::default() },
            threshold_ms: 10.0,
            min_event: SimDuration::from_mins(30),
            sanitize_gap: SimDuration::from_mins(30),
            baseline_quantile: 0.10,
            min_event_days: 7,
            diurnal_alpha: 1e-3,
            min_validity: 0.25,
            near_overlap_limit: 0.3,
            sustain_tail: SimDuration::from_days(10),
            health: crate::health::HealthConfig::default(),
            mask_slack: SimDuration::from_mins(30),
        }
    }
}

/// Outcome of the near-side check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NearGuard {
    /// Near series flat: far elevation is attributable to the link.
    Clean,
    /// Near series shifts together with the far series: the congestion is
    /// upstream of the measured link.
    CoincidentShifts,
    /// The near series has gap/outage intervals coincident with the far
    /// events (masked assessment only): whatever elevated the far series
    /// also broke near measurement, so the link cannot be blamed.
    CoincidentGaps,
    /// Not enough near data to decide ("unclear patterns" of §5.2).
    Unclear,
}

/// One shift event mapped to campaign time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Upshift instant.
    pub start: SimTime,
    /// Downshift instant.
    pub end: SimTime,
    /// Mean elevation above baseline, ms.
    pub magnitude_ms: f64,
}

impl TimedEvent {
    /// Event width.
    pub fn width(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Waveform characteristics (§6.2's `A_w` and `Δt_UD`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WaveformStats {
    /// Number of (sanitized) events.
    pub count: usize,
    /// Average magnitude, ms.
    pub a_w_ms: f64,
    /// Average up→down width.
    pub dt_ud: SimDuration,
    /// Fraction of observed time inside events.
    pub duty_cycle: f64,
}

/// Provenance for one sanitized congestion event: the quantities the
/// verdict rests on, kept so "why was this link flagged?" is answerable
/// from the assessment alone, without re-running the detector.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventEvidence {
    /// Round index (into the raw series) where the event begins.
    pub start_round: usize,
    /// Round index one past the event's last round.
    pub end_round: usize,
    /// Baseline level the shift rose from, ms.
    pub baseline_ms: f64,
    /// Mean elevation above the baseline, ms.
    pub magnitude_ms: f64,
    /// Bootstrap confidence of the event's opening changepoint (1.0 when
    /// the boundary was not bootstrap-tested; the p-value is
    /// `1.0 - confidence`).
    pub confidence: f64,
    /// Measurement-health class at decision time.
    pub health: LinkHealth,
    /// Did the artifact masks (far gaps, path changes) run and reject this
    /// event as an artifact — i.e. it survived the masking pass? `false`
    /// when no mask ran or the mask had nothing to test against.
    pub masks_rejected: bool,
}

/// Which mask diverted one event into [`Assessment::artifacts`]. First
/// match wins, in the same precedence the partition tests: far gap at the
/// event's start, far gap at its end, path change at its start, path change
/// at its end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactCauseKind {
    /// The event opens inside (or within slack of) a far gap/outage.
    GapAtStart,
    /// The event closes inside (or within slack of) a far gap/outage.
    GapAtEnd,
    /// The event opens at (or within slack of) a path-fingerprint change.
    PathChangeAtStart,
    /// The event closes at (or within slack of) a path-fingerprint change.
    PathChangeAtEnd,
}

/// Why one event in [`Assessment::artifacts`] was masked, parallel to that
/// vector entry for entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactCause {
    /// The mask that fired.
    pub kind: ArtifactCauseKind,
    /// The round whose proximity to a gap/path change triggered it.
    pub round: usize,
}

impl ArtifactCause {
    /// True when the cause is a far gap (either boundary).
    pub fn is_gap(&self) -> bool {
        matches!(self.kind, ArtifactCauseKind::GapAtStart | ArtifactCauseKind::GapAtEnd)
    }
}

/// Full per-link verdict.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Assessment {
    /// Level shifts ≥ threshold and ≥ 30 min were found on the far side.
    pub flagged: bool,
    /// The flagged shifts recur diurnally.
    pub diurnal: bool,
    /// The paper's *congested link* definition (§6.1): recurring diurnal far
    /// pattern with a flat near side.
    pub congested: bool,
    /// Near-side guard outcome.
    pub near_guard: NearGuard,
    /// Sanitized far-side events in campaign time.
    pub events: Vec<TimedEvent>,
    /// Waveform characterization.
    pub stats: WaveformStats,
    /// Congestion observed until the end of the (valid) series?
    /// `None` when the link was never congested.
    pub sustained: Option<bool>,
    /// Fraction of rounds with a far response.
    pub far_validity: f64,
    /// Baseline far RTT (ms).
    pub baseline_ms: f64,
    /// Measurement health of the series (always `Clean` on the unmasked
    /// path, which assumes nothing about data quality).
    pub health: LinkHealth,
    /// Level shifts attributed to measurement artifacts: they began or
    /// ended inside (or within slack of) a far gap/outage interval. Kept
    /// for reporting; excluded from [`Assessment::events`] and from every
    /// verdict.
    pub artifacts: Vec<TimedEvent>,
    /// Per-event provenance, parallel to [`Assessment::events`].
    pub evidence: Vec<EventEvidence>,
    /// Why each artifact was masked, parallel to [`Assessment::artifacts`].
    pub artifact_causes: Vec<ArtifactCause>,
}

/// Threshold-independent detector output, reusable across a threshold sweep.
pub struct Segmentation {
    far: Vec<f64>,
    far_idx: Vec<usize>,
    segs: Vec<Segment>,
    baseline: f64,
    det: DetectorConfig,
    min_len: usize,
    far_validity: f64,
}

/// Run the level-shift detector once; the expensive, threshold-independent
/// half of [`assess_link`]. Returns `None` when the series is too short.
pub fn segment_far(series: &LinkSeries, cfg: &AssessConfig) -> Option<Segmentation> {
    segment_far_with(series, cfg, &mut DetectorScratch::new())
}

/// [`segment_far`] over reusable detector scratch: the detection internals
/// (shuffle, rank, selection and stack buffers) come from `scratch`, so a
/// per-worker scratch makes the hot per-window path allocation-free. The
/// returned [`Segmentation`] still owns its data — it outlives the scratch
/// across a threshold sweep.
pub fn segment_far_with(
    series: &LinkSeries,
    cfg: &AssessConfig,
    scratch: &mut DetectorScratch,
) -> Option<Segmentation> {
    let (far, far_idx) = series.far_clean();
    let far_validity = series.far_validity();
    let min_len = samples_for(cfg.min_event, series.cfg.interval);
    if far.len() < 2 * cfg.detector.min_segment.max(min_len) {
        return None;
    }
    let det = DetectorConfig { min_segment: min_len.max(cfg.detector.min_segment), ..cfg.detector.clone() };
    let (segs, baseline) = scratch.segment_series(&far, &det, cfg.baseline_quantile);
    let segs = segs.to_vec();
    Some(Segmentation { far, far_idx, segs, baseline, det, min_len, far_validity })
}

/// Run the full assessment for one link.
pub fn assess_link(series: &LinkSeries, cfg: &AssessConfig) -> Assessment {
    assess_link_with(series, cfg, &mut DetectorScratch::new())
}

/// [`assess_link`] over reusable detector scratch (one per worker thread).
pub fn assess_link_with(
    series: &LinkSeries,
    cfg: &AssessConfig,
    scratch: &mut DetectorScratch,
) -> Assessment {
    match segment_far_with(series, cfg, scratch) {
        Some(pre) => assess_from_segmentation_with(series, cfg, &pre, scratch),
        None => empty_assessment(series.far_validity(), f64::NAN),
    }
}

/// The cheap, threshold-dependent half of the assessment.
pub fn assess_from_segmentation(series: &LinkSeries, cfg: &AssessConfig, pre: &Segmentation) -> Assessment {
    assess_from_segmentation_with(series, cfg, pre, &mut DetectorScratch::new())
}

/// [`assess_from_segmentation`] over reusable detector scratch (the near-
/// side guard runs the detector on the near series).
pub fn assess_from_segmentation_with(
    series: &LinkSeries,
    cfg: &AssessConfig,
    pre: &Segmentation,
    scratch: &mut DetectorScratch,
) -> Assessment {
    assess_core(series, cfg, pre, None, scratch)
}

/// [`assess_link`] under a measurement-health mask: level shifts whose
/// boundaries coincide with a far-side gap/outage interval in `mask` are
/// attributed to measurement artifacts, and far events coincident with
/// near-side gaps veto the link as [`NearGuard::CoincidentGaps`]. Obtain
/// the mask from [`crate::health::classify_link`] (typically with
/// [`AssessConfig::health`]).
pub fn assess_link_masked(series: &LinkSeries, cfg: &AssessConfig, mask: &HealthReport) -> Assessment {
    assess_link_masked_with(series, cfg, mask, &mut DetectorScratch::new())
}

/// [`assess_link_masked`] over reusable detector scratch.
pub fn assess_link_masked_with(
    series: &LinkSeries,
    cfg: &AssessConfig,
    mask: &HealthReport,
    scratch: &mut DetectorScratch,
) -> Assessment {
    match segment_far_with(series, cfg, scratch) {
        Some(pre) => assess_core(series, cfg, &pre, Some(mask), scratch),
        None => Assessment { health: mask.overall, ..empty_assessment(series.far_validity(), f64::NAN) },
    }
}

/// [`assess_link_masked_with`] with telemetry: the verdict lands in the
/// aggregate `links_*` counters and in the link's ledger (event counts,
/// artifact counts, health class). A disabled recorder records nothing and
/// the assessment itself is unchanged — telemetry only observes.
pub fn assess_link_masked_rec<R: Recorder>(
    series: &LinkSeries,
    cfg: &AssessConfig,
    mask: &HealthReport,
    scratch: &mut DetectorScratch,
    rec: &R,
    key: LinkKey,
) -> Assessment {
    let a = assess_link_masked_with(series, cfg, mask, scratch);
    record_assessment(rec, key, &a);
    a
}

/// Fold one assessment's verdict into a telemetry recorder: aggregate
/// counters, the per-link ledger's event/artifact/health fields, and the
/// validity/baseline distributions.
pub fn record_assessment<R: Recorder>(rec: &R, key: LinkKey, a: &Assessment) {
    if !rec.enabled() {
        return;
    }
    rec.add("links_assessed", 1);
    if a.flagged {
        rec.add("links_flagged", 1);
    }
    if a.diurnal {
        rec.add("links_diurnal", 1);
    }
    if a.congested {
        rec.add("links_congested", 1);
    }
    rec.add("congestion_events", a.events.len() as u64);
    rec.add("artifact_events", a.artifacts.len() as u64);
    let gap_artifacts = a.artifact_causes.iter().filter(|c| c.is_gap()).count() as u64;
    rec.add("artifact_events_gap", gap_artifacts);
    rec.add("artifact_events_path", a.artifact_causes.len() as u64 - gap_artifacts);
    rec.link_event(key, LinkEvent::Events(a.events.len() as u64));
    rec.link_event(key, LinkEvent::Artifacts(a.artifacts.len() as u64));
    rec.link_event(key, LinkEvent::Health(a.health.token()));
    // Provenance for a tracing recorder: one changepoint record per
    // accepted event, carrying the shift round and bootstrap confidence.
    // Lane 0 — the batch pipeline has no worker identity at this layer, and
    // the emission rate is once per event per link, not per sample.
    for ev in &a.evidence {
        rec.trace(
            TraceEvent::new(TraceKind::BatchChangepoint, ev.start_round as u64, 0, key.far)
                .a(ev.start_round as u64)
                .v(ev.confidence),
        );
    }
    rec.observe("far_validity", a.far_validity);
    if a.baseline_ms.is_finite() {
        rec.observe("baseline_far_ms", a.baseline_ms);
    }
}

/// Shared implementation: `mask = None` is the unmasked path (identical
/// decisions to the pre-mask assessment), `Some` applies artifact masking.
fn assess_core(
    series: &LinkSeries,
    cfg: &AssessConfig,
    pre: &Segmentation,
    mask: Option<&HealthReport>,
    scratch: &mut DetectorScratch,
) -> Assessment {
    let Segmentation { far, far_idx, segs, baseline, det, min_len, far_validity } = pre;
    let (far, far_idx, min_len, far_validity, baseline) =
        (far, far_idx, *min_len, *far_validity, *baseline);
    let raw_events = extract_events(segs, baseline, cfg.threshold_ms, min_len);
    let gap = samples_for(cfg.sanitize_gap, series.cfg.interval);
    let mut events = sanitize_events(&raw_events, gap);

    // Partition events whose boundaries touch a far gap/outage or a
    // fingerprinted path change (within slack) into artifacts: a shift that
    // starts or ends where measurement broke — or where routing swapped the
    // path under the ladder — is evidence about the measurement, not about
    // the queue. Events on a stable, fully answered path are untouched.
    let slack = samples_for(cfg.mask_slack, series.cfg.interval);
    let mut artifact_raw: Vec<ShiftEvent> = Vec::new();
    let mut artifact_causes: Vec<ArtifactCause> = Vec::new();
    let mut masks_ran = false;
    if let Some(h) = mask {
        if !h.gaps.is_empty() || !h.path_changes.is_empty() {
            masks_ran = true;
            let mut kept = Vec::with_capacity(events.len());
            for e in events {
                let start_round = far_idx[e.start];
                let end_round = far_idx[(e.end - 1).min(far_idx.len() - 1)];
                // Same predicate as before, unrolled so the *first* firing
                // mask is recorded as the artifact's cause.
                let cause = if h.near_far_gap(start_round, slack) {
                    Some(ArtifactCause { kind: ArtifactCauseKind::GapAtStart, round: start_round })
                } else if h.near_far_gap(end_round, slack) {
                    Some(ArtifactCause { kind: ArtifactCauseKind::GapAtEnd, round: end_round })
                } else if h.near_path_change(start_round, slack) {
                    Some(ArtifactCause {
                        kind: ArtifactCauseKind::PathChangeAtStart,
                        round: start_round,
                    })
                } else if h.near_path_change(end_round, slack) {
                    Some(ArtifactCause { kind: ArtifactCauseKind::PathChangeAtEnd, round: end_round })
                } else {
                    None
                };
                match cause {
                    Some(c) => {
                        artifact_causes.push(c);
                        artifact_raw.push(e);
                    }
                    None => kept.push(e),
                }
            }
            events = kept;
        }
    }
    let flagged = !events.is_empty();

    let to_timed = |e: &ShiftEvent| TimedEvent {
        start: series.timestamp(far_idx[e.start]),
        end: series.timestamp(far_idx[(e.end - 1).min(far_idx.len() - 1)]) + series.cfg.interval,
        magnitude_ms: e.magnitude,
    };
    let timed: Vec<TimedEvent> = events.iter().map(to_timed).collect();
    let artifacts: Vec<TimedEvent> = artifact_raw.iter().map(to_timed).collect();

    // Near-side guard, extended under a mask: far events spending too much
    // of their span inside near-side measurement gaps cannot exonerate the
    // near series, so they veto the link just like coincident near shifts.
    let mut guard = near_guard(series, &events, far_idx, cfg, det, scratch);
    if let Some(h) = mask {
        if guard != NearGuard::CoincidentShifts && !h.near_gaps.is_empty() && flagged {
            let spans: Vec<(usize, usize)> = events
                .iter()
                .map(|e| (far_idx[e.start], far_idx[(e.end - 1).min(far_idx.len() - 1)] + 1))
                .collect();
            let total: usize = spans.iter().map(|(a, b)| b - a).sum();
            let covered = gap_overlap(&spans, &h.near_gaps, slack);
            if total > 0 && covered as f64 / total as f64 > cfg.near_overlap_limit {
                guard = NearGuard::CoincidentGaps;
            }
        }
    }
    let near_guard = guard;

    // Diurnal classification over the *timed* events.
    let diurnal = flagged && near_guard == NearGuard::Clean && is_diurnal(&timed, cfg);

    // Waveform stats from sanitized events.
    let st = event_stats(&events, far.len());
    let stats = WaveformStats {
        count: st.count,
        a_w_ms: st.avg_magnitude,
        dt_ud: SimDuration::from_micros(
            (st.avg_width_samples * series.cfg.interval.as_micros() as f64) as u64,
        ),
        duty_cycle: st.duty_cycle,
    };

    // Sustained vs transient: did events continue to the end of valid data?
    let sustained = if !flagged || !diurnal {
        None
    } else {
        let last_valid = far_idx.last().map(|&i| series.timestamp(i)).unwrap_or(series.cfg.start);
        let last_event_end = timed.last().map(|e| e.end).unwrap_or(series.cfg.start);
        Some(last_valid.saturating_since(last_event_end) <= cfg.sustain_tail)
    };

    // An untrusted series cannot support a congestion verdict. AddrUnstable
    // always vetoes (the answers may not even be the link's). Silent vetoes
    // only when validity is below `min_validity`: a link with months of good
    // data that is later decommissioned (the GHANATEL pattern) is Silent
    // overall yet its live-era congestion evidence is real. PathChange stays
    // trusted: the samples themselves are sound, and the change-coincident
    // shifts were already diverted to artifacts above — shifts on the stable
    // stretches between changes are real evidence.
    let health = mask.map_or(LinkHealth::Clean, |h| h.overall);
    let trusted = match health {
        LinkHealth::AddrUnstable => false,
        LinkHealth::Silent => mask.is_none_or(|h| h.far_validity >= cfg.min_validity),
        _ => true,
    };

    // Per-event provenance: the opening changepoint's bootstrap confidence
    // comes from the segment whose left boundary opened the event (1.0 when
    // sanitization merged away the exact boundary).
    let evidence: Vec<EventEvidence> = events
        .iter()
        .map(|e| EventEvidence {
            start_round: far_idx[e.start],
            end_round: far_idx[(e.end - 1).min(far_idx.len() - 1)] + 1,
            baseline_ms: baseline,
            magnitude_ms: e.magnitude,
            confidence: segs
                .iter()
                .find(|g| g.start == e.start)
                .map_or(1.0, |g| g.confidence),
            health,
            masks_rejected: masks_ran,
        })
        .collect();

    Assessment {
        flagged,
        diurnal,
        congested: flagged && diurnal && near_guard == NearGuard::Clean && trusted,
        near_guard,
        events: timed,
        stats,
        sustained,
        far_validity,
        baseline_ms: baseline,
        health,
        artifacts,
        evidence,
        artifact_causes,
    }
}

/// Rounds of `spans` covered by `gaps`, each gap widened by `slack`.
fn gap_overlap(spans: &[(usize, usize)], gaps: &[crate::health::GapInterval], slack: usize) -> usize {
    let mut overlap = 0usize;
    for &(a, b) in spans {
        for g in gaps {
            let lo = a.max(g.start.saturating_sub(slack));
            let hi = b.min(g.end.saturating_add(slack));
            if hi > lo {
                overlap += hi - lo;
            }
        }
    }
    overlap
}

/// Re-evaluate the flagged/diurnal verdicts at several thresholds while
/// running the (expensive, threshold-independent) segmentation only once —
/// the Table 1 sensitivity sweep.
pub fn assess_at_thresholds(series: &LinkSeries, cfg: &AssessConfig, thresholds_ms: &[f64]) -> Vec<(f64, Assessment)> {
    assess_at_thresholds_with(series, cfg, thresholds_ms, &mut DetectorScratch::new())
}

/// [`assess_at_thresholds`] over reusable detector scratch.
pub fn assess_at_thresholds_with(
    series: &LinkSeries,
    cfg: &AssessConfig,
    thresholds_ms: &[f64],
    scratch: &mut DetectorScratch,
) -> Vec<(f64, Assessment)> {
    let min_t = thresholds_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let base_cfg = AssessConfig {
        detector: DetectorConfig {
            magnitude_gate: cfg.detector.magnitude_gate.min(min_t * 0.8),
            ..cfg.detector.clone()
        },
        ..cfg.clone()
    };
    let pre = segment_far_with(series, &base_cfg, scratch);
    thresholds_ms
        .iter()
        .map(|&t| {
            let c = AssessConfig { threshold_ms: t, ..base_cfg.clone() };
            let a = match &pre {
                Some(p) => assess_from_segmentation_with(series, &c, p, scratch),
                None => empty_assessment(series.far_validity(), f64::NAN),
            };
            (t, a)
        })
        .collect()
}

/// [`assess_at_thresholds_with`] under a measurement-health mask: the
/// segmentation and the health classification each run once, the masked
/// verdict logic runs per threshold.
pub fn assess_at_thresholds_masked_with(
    series: &LinkSeries,
    cfg: &AssessConfig,
    thresholds_ms: &[f64],
    mask: &HealthReport,
    scratch: &mut DetectorScratch,
) -> Vec<(f64, Assessment)> {
    let min_t = thresholds_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let base_cfg = AssessConfig {
        detector: DetectorConfig {
            magnitude_gate: cfg.detector.magnitude_gate.min(min_t * 0.8),
            ..cfg.detector.clone()
        },
        ..cfg.clone()
    };
    let pre = segment_far_with(series, &base_cfg, scratch);
    thresholds_ms
        .iter()
        .map(|&t| {
            let c = AssessConfig { threshold_ms: t, ..base_cfg.clone() };
            let a = match &pre {
                Some(p) => assess_core(series, &c, p, Some(mask), scratch),
                None => Assessment {
                    health: mask.overall,
                    ..empty_assessment(series.far_validity(), f64::NAN)
                },
            };
            (t, a)
        })
        .collect()
}

impl Assessment {
    /// An all-negative assessment: nothing flagged, no events, unknown near
    /// side. Produced for too-short series; also what a quarantined link
    /// carries in the study layer.
    pub fn empty(far_validity: f64, baseline_ms: f64) -> Assessment {
        Assessment {
            flagged: false,
            diurnal: false,
            congested: false,
            near_guard: NearGuard::Unclear,
            events: Vec::new(),
            stats: WaveformStats::default(),
            sustained: None,
            far_validity,
            baseline_ms,
            health: LinkHealth::Clean,
            artifacts: Vec::new(),
            evidence: Vec::new(),
            artifact_causes: Vec::new(),
        }
    }
}

fn empty_assessment(far_validity: f64, baseline: f64) -> Assessment {
    Assessment::empty(far_validity, baseline)
}

fn samples_for(d: SimDuration, interval: SimDuration) -> usize {
    (d.as_micros() / interval.as_micros().max(1)).max(1) as usize
}

/// Check the near series for shifts coincident with the far events.
fn near_guard(
    series: &LinkSeries,
    far_events: &[ShiftEvent],
    far_idx: &[usize],
    cfg: &AssessConfig,
    det: &DetectorConfig,
    scratch: &mut DetectorScratch,
) -> NearGuard {
    let (near, near_idx) = series.near_clean();
    if near.len() < 2 * det.min_segment || near.len() < series.len() / 4 {
        return NearGuard::Unclear;
    }
    let (segs, base) = scratch.segment_series(&near, det, cfg.baseline_quantile);
    let near_events = extract_events(segs, base, cfg.threshold_ms, det.min_segment);
    if near_events.is_empty() || far_events.is_empty() {
        return NearGuard::Clean;
    }
    // Overlap between far events and near events in *round index* space.
    let to_rounds = |ev: &ShiftEvent, idx: &[usize]| -> (usize, usize) {
        (idx[ev.start], idx[(ev.end - 1).min(idx.len() - 1)] + 1)
    };
    let far_spans: Vec<(usize, usize)> = far_events.iter().map(|e| to_rounds(e, far_idx)).collect();
    let near_spans: Vec<(usize, usize)> = near_events.iter().map(|e| to_rounds(e, &near_idx)).collect();
    let far_total: usize = far_spans.iter().map(|(a, b)| b - a).sum();
    let mut overlap = 0usize;
    for &(fa, fb) in &far_spans {
        for &(na, nb) in &near_spans {
            let lo = fa.max(na);
            let hi = fb.min(nb);
            if hi > lo {
                overlap += hi - lo;
            }
        }
    }
    if far_total > 0 && overlap as f64 / far_total as f64 > cfg.near_overlap_limit {
        NearGuard::CoincidentShifts
    } else {
        NearGuard::Clean
    }
}

/// Decide whether events recur diurnally: enough distinct event days, and
/// event *onsets* significantly concentrated at a consistent time of day.
///
/// Onset times map onto the 24-hour clock as angles; the Rayleigh test
/// rejects uniformity when `exp(−n·R²) < α`, `R` being the circular mean
/// resultant length over the `n` events. A queue that starts filling at
/// ~08:30 every morning rejects overwhelmingly; the sporadic level shifts
/// of routing flaps land uniformly on the clock (`R ≈ 1/√n`) and pass a
/// fixed per-link false-positive budget of α — which matters when ten
/// thousand links are screened. Unlike a fold-coverage contrast, the test
/// works equally for sustained congestion and for a two-month transient
/// episode inside a 13-month series.
fn is_diurnal(events: &[TimedEvent], cfg: &AssessConfig) -> bool {
    if events.is_empty() {
        return false;
    }
    let mut days = std::collections::HashSet::new();
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    for e in events {
        days.insert(e.start.day_index());
        let frac = e.start.time_of_day().as_micros() as f64 / MICROS_PER_DAY as f64;
        let theta = std::f64::consts::TAU * frac;
        sx += theta.cos();
        sy += theta.sin();
    }
    if days.len() < cfg.min_event_days {
        return false;
    }
    let n = events.len() as f64;
    let r = (sx * sx + sy * sy).sqrt() / n;
    let p_uniform = (-n * r * r).exp();
    p_uniform < cfg.diurnal_alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{LinkSeries, SeriesConfig};
    use ixp_prober::tslp::TslpSample;

    /// Synthesize a series: `far(t)` in ms given the round timestamp.
    fn synth(days: u64, far: impl Fn(SimTime) -> f64, near: impl Fn(SimTime) -> f64) -> LinkSeries {
        let start = SimTime::from_date(2016, 3, 1);
        let cfg = SeriesConfig::five_minute(start);
        let mut s = LinkSeries::new(cfg);
        for i in 0..(days * 288) as usize {
            let t = cfg.timestamp(i);
            let f = far(t);
            let n = near(t);
            s.push(&TslpSample {
                t,
                near: if n.is_finite() { Some(SimDuration::from_secs_f64(n / 1e3)) } else { None },
                far: if f.is_finite() { Some(SimDuration::from_secs_f64(f / 1e3)) } else { None },
                near_addr_ok: true,
                far_addr_ok: true,
                path_fp: if n.is_finite() && f.is_finite() { 0xFEED } else { 0 },
            });
        }
        s
    }

    fn jitter(t: SimTime, amp: f64) -> f64 {
        let h = ixp_simnet::rng::splitmix64(t.as_micros());
        amp * ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
    }

    /// Business-hours congestion: 25 ms elevation 10:00–16:00 on weekdays.
    fn diurnal_far(t: SimTime) -> f64 {
        let base = 2.0 + jitter(t, 0.8);
        if !t.is_weekend() && (10.0..16.0).contains(&t.hour_of_day()) {
            base + 25.0 + jitter(t, 2.0)
        } else {
            base
        }
    }

    fn flat(amp: f64) -> impl Fn(SimTime) -> f64 {
        move |t| 1.0 + jitter(t, amp)
    }

    #[test]
    fn detects_diurnal_congestion() {
        let s = synth(28, diurnal_far, flat(0.5));
        let a = assess_link(&s, &AssessConfig::default());
        assert!(a.flagged);
        assert!(a.diurnal, "diurnal not detected: {:?}", a.stats);
        assert!(a.congested);
        assert_eq!(a.near_guard, NearGuard::Clean);
        assert!((20.0..30.0).contains(&a.stats.a_w_ms), "A_w {}", a.stats.a_w_ms);
        // Six-hour weekday events.
        let w = a.stats.dt_ud.as_secs_f64() / 3600.0;
        assert!((4.0..8.5).contains(&w), "width {w}h");
        assert_eq!(a.sustained, Some(true));
    }

    #[test]
    fn healthy_link_not_flagged() {
        let s = synth(28, flat(0.8), flat(0.5));
        let a = assess_link(&s, &AssessConfig::default());
        assert!(!a.flagged);
        assert!(!a.congested);
        assert_eq!(a.sustained, None);
    }

    #[test]
    fn single_shift_flagged_but_not_diurnal() {
        // One 3-day 20 ms elevation: a routing change, not congestion.
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let far = move |t: SimTime| {
            let base = 2.0 + jitter(t, 0.8);
            let d = t.day_index() - day0;
            if (10..13).contains(&d) {
                base + 20.0
            } else {
                base
            }
        };
        let s = synth(28, far, flat(0.5));
        let a = assess_link(&s, &AssessConfig::default());
        assert!(a.flagged, "level shift must be flagged");
        assert!(!a.diurnal, "a one-off shift is not diurnal");
        assert!(!a.congested);
    }

    #[test]
    fn near_side_shift_disqualifies() {
        // Both near and far rise together: congestion upstream of the link.
        let elevated = |t: SimTime| {
            let base = 2.0 + jitter(t, 0.5);
            if !t.is_weekend() && (10.0..16.0).contains(&t.hour_of_day()) {
                base + 25.0
            } else {
                base
            }
        };
        let s = synth(28, elevated, elevated);
        let a = assess_link(&s, &AssessConfig::default());
        assert!(a.flagged);
        assert_eq!(a.near_guard, NearGuard::CoincidentShifts);
        assert!(!a.congested);
    }

    #[test]
    fn missing_near_data_is_unclear() {
        let s = synth(28, diurnal_far, |_| f64::NAN);
        let a = assess_link(&s, &AssessConfig::default());
        assert!(a.flagged);
        assert_eq!(a.near_guard, NearGuard::Unclear);
        assert!(!a.congested, "unclear near side must not confirm congestion");
    }

    #[test]
    fn transient_congestion_labeled() {
        // Congested for the first 10 days only, then clean for 30.
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let far = move |t: SimTime| {
            let base = 2.0 + jitter(t, 0.8);
            if t.day_index() - day0 < 10 && (9.0..17.0).contains(&t.hour_of_day()) {
                base + 22.0
            } else {
                base
            }
        };
        let s = synth(40, far, flat(0.5));
        let a = assess_link(&s, &AssessConfig::default());
        assert!(a.congested, "events: {}", a.events.len());
        assert_eq!(a.sustained, Some(false));
    }

    #[test]
    fn threshold_sweep_grades_events() {
        // 12 ms diurnal elevation: flagged at 5 and 10, not at 15/20.
        let far = |t: SimTime| {
            let base = 2.0 + jitter(t, 0.7);
            if (11.0..15.0).contains(&t.hour_of_day()) {
                base + 12.0
            } else {
                base
            }
        };
        let s = synth(28, far, flat(0.5));
        let sweep = assess_at_thresholds(&s, &AssessConfig::default(), &[5.0, 10.0, 15.0, 20.0]);
        let flags: Vec<bool> = sweep.iter().map(|(_, a)| a.flagged).collect();
        assert_eq!(flags, vec![true, true, false, false], "{flags:?}");
        assert!(sweep[0].1.diurnal);
    }

    #[test]
    fn far_death_is_handled() {
        // Far answers for 10 days then never again (the GHANATEL shutdown).
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let far = move |t: SimTime| {
            if t.day_index() - day0 < 10 {
                2.0 + jitter(t, 0.5)
            } else {
                f64::NAN
            }
        };
        let s = synth(40, far, flat(0.5));
        let a = assess_link(&s, &AssessConfig::default());
        assert!(a.far_validity < 0.3);
        assert!(!a.congested);
    }

    #[test]
    fn short_series_safe() {
        let s = synth(0, flat(1.0), flat(1.0));
        let a = assess_link(&s, &AssessConfig::default());
        assert!(!a.flagged);
    }

    use crate::health::classify_link;

    /// A far series whose only "shift" is the detector stitching across a
    /// maintenance gap: elevated readings hug both edges of a daily outage.
    fn gap_artifact_far(day0: u64) -> impl Fn(SimTime) -> f64 {
        move |t: SimTime| {
            let d = t.day_index() - day0;
            let h = t.hour_of_day();
            if (5..15).contains(&d) && (2.0..5.0).contains(&h) {
                f64::NAN // nightly maintenance window
            } else if (5..15).contains(&d) && ((1.5..2.0).contains(&h) || (5.0..5.5).contains(&h)) {
                30.0 + jitter(t, 1.0) // elevated only while ramping in/out of it
            } else {
                2.0 + jitter(t, 0.8)
            }
        }
    }

    #[test]
    fn gap_edge_shifts_become_artifacts() {
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let s = synth(28, gap_artifact_far(day0), flat(0.5));
        let cfg = AssessConfig::default();
        let unmasked = assess_link(&s, &cfg);
        let mask = classify_link(&s, &cfg.health);
        assert_eq!(mask.overall, LinkHealth::Gappy, "{mask:?}");
        let masked = assess_link_masked(&s, &cfg, &mask);
        assert!(!masked.congested, "gap-edge shifts must not read as congestion");
        assert!(!masked.flagged, "every event touches a gap: {:?}", masked.events);
        assert!(!masked.artifacts.is_empty(), "edge shifts must be kept as artifacts");
        assert_eq!(masked.health, LinkHealth::Gappy);
        // The unmasked path keeps its old behavior: whatever it decided,
        // it reports Clean health and no artifacts.
        assert_eq!(unmasked.health, LinkHealth::Clean);
        assert!(unmasked.artifacts.is_empty());
    }

    #[test]
    fn true_congestion_survives_unrelated_gap() {
        // Business-hours congestion plus a 4-hour maintenance gap at night
        // in a different week: masking must not eat the real signal.
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let far = move |t: SimTime| {
            if t.day_index() - day0 == 20 && (1.0..5.0).contains(&t.hour_of_day()) {
                f64::NAN
            } else {
                diurnal_far(t)
            }
        };
        let s = synth(28, far, flat(0.5));
        let cfg = AssessConfig::default();
        let mask = classify_link(&s, &cfg.health);
        assert_eq!(mask.overall, LinkHealth::Gappy);
        let a = assess_link_masked(&s, &cfg, &mask);
        assert!(a.congested, "real congestion must survive an unrelated gap");
        assert_eq!(a.health, LinkHealth::Gappy);
    }

    #[test]
    fn near_gap_coincidence_vetoes() {
        // The far series shifts exactly while the *near* series is dark:
        // the VP (or its access link) was misbehaving, not the far queue.
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let far = move |t: SimTime| {
            let base = 2.0 + jitter(t, 0.8);
            if (8..22).contains(&(t.day_index() - day0)) && (9.0..16.0).contains(&t.hour_of_day()) {
                base + 25.0
            } else {
                base
            }
        };
        let near = move |t: SimTime| {
            if (8..22).contains(&(t.day_index() - day0)) && (8.5..16.5).contains(&t.hour_of_day()) {
                f64::NAN
            } else {
                1.0 + jitter(t, 0.5)
            }
        };
        let s = synth(28, far, near);
        let cfg = AssessConfig::default();
        let mask = classify_link(&s, &cfg.health);
        assert!(!mask.near_gaps.is_empty(), "near gaps must be tracked");
        let a = assess_link_masked(&s, &cfg, &mask);
        assert!(a.flagged, "the far shifts themselves are real events");
        assert_eq!(a.near_guard, NearGuard::CoincidentGaps, "{:?}", a.near_guard);
        assert!(!a.congested);
    }

    /// Rewrite the fingerprint regime of answered rounds by day offset.
    fn set_fp_regimes(s: &mut LinkSeries, day0: u64, regime: impl Fn(u64) -> u64) {
        for i in 0..s.len() {
            if s.path_fp[i] != 0 {
                let d = s.cfg.timestamp(i).day_index() - day0;
                s.path_fp[i] = regime(d);
            }
        }
    }

    #[test]
    fn path_change_shift_becomes_artifact() {
        // A 20 ms level shift exactly spanning a routing transient: the
        // fingerprint flips to a new regime for days 10..13 and back. The
        // elevation is a longer path, not a queue — masked assessment must
        // divert it to artifacts and keep zero congestion labels.
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let far = move |t: SimTime| {
            let base = 2.0 + jitter(t, 0.8);
            if (10..13).contains(&(t.day_index() - day0)) {
                base + 20.0
            } else {
                base
            }
        };
        let mut s = synth(28, far, flat(0.5));
        set_fp_regimes(&mut s, day0, |d| if (10..13).contains(&d) { 0xBBBB } else { 0xAAAA });
        let cfg = AssessConfig::default();
        let mask = classify_link(&s, &cfg.health);
        assert_eq!(mask.overall, LinkHealth::PathChange, "{mask:?}");
        assert_eq!(mask.path_changes.len(), 2, "{:?}", mask.path_changes);
        let a = assess_link_masked(&s, &cfg, &mask);
        assert!(!a.flagged, "path-coincident shift must not flag: {:?}", a.events);
        assert!(!a.congested);
        assert!(!a.artifacts.is_empty(), "the shift must be kept as an artifact");
        assert_eq!(a.health, LinkHealth::PathChange);
        // The unmasked path still sees a plain level shift — the masking is
        // what the fingerprints buy.
        assert!(assess_link(&s, &cfg).flagged);
    }

    #[test]
    fn true_congestion_survives_unrelated_path_change() {
        // Business-hours congestion all month, plus one midnight routing
        // event on day 20: masking the change instant must not eat the
        // recurring real signal.
        let day0 = SimTime::from_date(2016, 3, 1).day_index();
        let mut s = synth(28, diurnal_far, flat(0.5));
        set_fp_regimes(&mut s, day0, |d| if d < 20 { 0xAAAA } else { 0xBBBB });
        let cfg = AssessConfig::default();
        let mask = classify_link(&s, &cfg.health);
        assert_eq!(mask.overall, LinkHealth::PathChange);
        let a = assess_link_masked(&s, &cfg, &mask);
        assert!(a.congested, "recall: real congestion must survive a path change");
        assert_eq!(a.health, LinkHealth::PathChange, "the verdict still notes the event");
    }

    #[test]
    fn stable_fingerprints_keep_verdicts_identical() {
        // A series probed on a never-changing path must assess exactly like
        // the same series with no fingerprints at all (pre-fingerprinting
        // checkpoints deserialize with `path_fp` empty).
        let cfg = AssessConfig::default();
        let with_fp = synth(28, diurnal_far, flat(0.5));
        let mut without_fp = with_fp.clone();
        without_fp.path_fp.clear();
        let a = assess_link_masked(&with_fp, &cfg, &classify_link(&with_fp, &cfg.health));
        let b = assess_link_masked(&without_fp, &cfg, &classify_link(&without_fp, &cfg.health));
        assert_eq!(
            (a.flagged, a.diurnal, a.congested, a.near_guard, a.health),
            (b.flagged, b.diurnal, b.congested, b.near_guard, b.health)
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.artifacts, b.artifacts);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn masked_matches_unmasked_on_clean_series() {
        let s = synth(28, diurnal_far, flat(0.5));
        let cfg = AssessConfig::default();
        let mask = classify_link(&s, &cfg.health);
        assert_eq!(mask.overall, LinkHealth::Clean);
        let masked = assess_link_masked(&s, &cfg, &mask);
        let unmasked = assess_link(&s, &cfg);
        assert_eq!(masked.congested, unmasked.congested);
        assert_eq!(masked.events, unmasked.events);
        assert_eq!(masked.near_guard, unmasked.near_guard);
        assert!(masked.artifacts.is_empty());
    }

    #[test]
    fn untrusted_health_vetoes_congestion() {
        // Diurnal far pattern but every response from the wrong address.
        let start = SimTime::from_date(2016, 3, 1);
        let cfg_s = crate::series::SeriesConfig::five_minute(start);
        let mut s = LinkSeries::new(cfg_s);
        for i in 0..(28 * 288) as usize {
            let t = cfg_s.timestamp(i);
            let f = diurnal_far(t);
            s.push(&TslpSample {
                t,
                near: Some(SimDuration::from_millis(1)),
                far: Some(SimDuration::from_secs_f64(f / 1e3)),
                near_addr_ok: true,
                far_addr_ok: false,
                path_fp: 0xFEED,
            });
        }
        let cfg = AssessConfig::default();
        let mask = classify_link(&s, &cfg.health);
        assert_eq!(mask.overall, LinkHealth::AddrUnstable);
        let a = assess_link_masked(&s, &cfg, &mask);
        assert!(a.flagged && a.diurnal, "the waveform itself still reads as diurnal");
        assert!(!a.congested, "untrusted responders cannot confirm congestion");
        assert!(assess_link(&s, &cfg).congested, "unmasked path is blind to this");
    }
}
