//! Loss-rate campaigns and their correlation with congestion events.
//!
//! §4: links with repeated congestion got loss probing — one packet per
//! second, loss computed over every batch of 100 probes — from 19/07/2016.
//! Figures 2b and 3b plot those series; §6.2 reads them as impact evidence
//! (GHANATEL phase 2: 0–85 % loss; KNET: 0.1 % average, "end-users were not
//! severely impacted"). Batches here are spaced configurably (default
//! hourly) rather than back-to-back; DESIGN.md documents the substitution.

use crate::detect::TimedEvent;
use ixp_prober::loss::{loss_batch, LossConfig};
use ixp_simnet::net::Network;
use ixp_simnet::rng::mix;
use ixp_simnet::node::NodeId;
use ixp_simnet::prelude::Ipv4;
use ixp_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Loss campaign settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LossCampaignConfig {
    /// First batch instant.
    pub start: SimTime,
    /// End (exclusive).
    pub end: SimTime,
    /// Batch cadence.
    pub every: SimDuration,
    /// Probes per batch (the paper's 100).
    pub batch_size: u32,
    /// Inter-probe interval within a batch (the paper's 1 s).
    pub probe_interval: SimDuration,
}

impl LossCampaignConfig {
    /// Paper parameters with hourly batches over `[start, end)`.
    pub fn paper(start: SimTime, end: SimTime) -> LossCampaignConfig {
        LossCampaignConfig {
            start,
            end,
            every: SimDuration::from_hours(1),
            batch_size: 100,
            probe_interval: SimDuration::from_secs(1),
        }
    }
}

/// A loss-rate time series (one point per batch).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LossSeries {
    /// Batch start times.
    pub t: Vec<SimTime>,
    /// Loss fraction per batch.
    pub rate: Vec<f64>,
}

impl LossSeries {
    /// Number of batches.
    pub fn len(&self) -> usize {
        self.rate.len()
    }
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rate.is_empty()
    }
    /// Mean loss over all batches.
    pub fn mean(&self) -> f64 {
        if self.rate.is_empty() {
            return 0.0;
        }
        self.rate.iter().sum::<f64>() / self.rate.len() as f64
    }
    /// Maximum batch loss.
    pub fn max(&self) -> f64 {
        self.rate.iter().cloned().fold(0.0, f64::max)
    }
}

/// Run a loss campaign against one link end (TTL-limited toward `dst`).
///
/// Probes walk a private [`ProbeCtx`](ixp_simnet::net::ProbeCtx) seeded from
/// `(vp, dst, ttl)`, so the series is a pure function of the arguments and
/// safe to compute concurrently with other measurements on the same net.
pub fn measure_loss_series(
    net: &Network,
    vp: NodeId,
    dst: Ipv4,
    ttl: u8,
    cfg: &LossCampaignConfig,
) -> LossSeries {
    let mut ctx = net.probe_ctx(mix(&[vp.0 as u64, dst.0 as u64, ttl as u64, 0x1055]));
    let batch_cfg = LossConfig { batch_size: cfg.batch_size, interval: cfg.probe_interval };
    let mut out = LossSeries::default();
    let mut t = cfg.start;
    while t < cfg.end {
        let b = loss_batch(net, &mut ctx, vp, dst, ttl, &batch_cfg, t);
        out.t.push(t);
        out.rate.push(b.loss_rate());
        t += cfg.every;
    }
    out
}

/// Loss split inside vs outside congestion events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LossSplit {
    /// Mean batch loss during events.
    pub during_events: f64,
    /// Mean batch loss outside events.
    pub outside_events: f64,
    /// Batches that fell inside events.
    pub batches_in: usize,
    /// Batches outside events.
    pub batches_out: usize,
}

/// Correlate a loss series with congestion events: §6.2.1's "diurnal pattern
/// confirmed by the loss rate increase during that phase".
pub fn split_by_events(loss: &LossSeries, events: &[TimedEvent]) -> LossSplit {
    let mut split = LossSplit::default();
    let (mut sum_in, mut sum_out) = (0.0, 0.0);
    for (t, r) in loss.t.iter().zip(&loss.rate) {
        let inside = events.iter().any(|e| *t >= e.start && *t < e.end);
        if inside {
            split.batches_in += 1;
            sum_in += r;
        } else {
            split.batches_out += 1;
            sum_out += r;
        }
    }
    if split.batches_in > 0 {
        split.during_events = sum_in / split.batches_in as f64;
    }
    if split.batches_out > 0 {
        split.outside_events = sum_out / split.batches_out as f64;
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_prober::testutil::{congested_line, line_topology};

    #[test]
    fn clean_link_no_loss() {
        let (net, vp, tgt) = line_topology(60);
        let cfg = LossCampaignConfig::paper(SimTime::ZERO, SimTime(6 * 3_600_000_000));
        let s = measure_loss_series(&net, vp, tgt, 2, &cfg);
        assert_eq!(s.len(), 6);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn overloaded_link_loses() {
        let (net, vp, tgt) = congested_line(61, 2.0);
        let cfg = LossCampaignConfig::paper(SimTime(3_600_000_000), SimTime(5 * 3_600_000_000));
        let s = measure_loss_series(&net, vp, tgt, 2, &cfg);
        assert!(s.mean() > 0.35, "mean loss {}", s.mean());
        assert!(s.max() <= 1.0);
    }

    #[test]
    fn split_attributes_loss_to_events() {
        let loss = LossSeries {
            t: (0..10u64).map(|h| SimTime(h * 3_600_000_000)).collect(),
            rate: vec![0.0, 0.0, 0.5, 0.6, 0.4, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        let events = vec![TimedEvent {
            start: SimTime(2 * 3_600_000_000),
            end: SimTime(5 * 3_600_000_000),
            magnitude_ms: 20.0,
        }];
        let split = split_by_events(&loss, &events);
        assert_eq!(split.batches_in, 3);
        assert_eq!(split.batches_out, 7);
        assert!((split.during_events - 0.5).abs() < 1e-9);
        assert_eq!(split.outside_events, 0.0);
    }

    #[test]
    fn empty_series_safe() {
        let split = split_by_events(&LossSeries::default(), &[]);
        assert_eq!(split, LossSplit::default());
        assert!(LossSeries::default().is_empty());
    }
}
