//! Per-link TSLP time series.
//!
//! One [`LinkSeries`] holds a year of 5-minute near/far RTT samples for one
//! interdomain link (§4), with `NaN` marking rounds whose probes went
//! unanswered — which the pipeline must handle gracefully: the
//! GIXA–GHANATEL far end stops answering entirely on 06/08/2016.

use ixp_prober::tslp::TslpSample;
use ixp_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Sampling grid of a series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SeriesConfig {
    /// First round instant.
    pub start: SimTime,
    /// Round interval (the paper's 5 minutes).
    pub interval: SimDuration,
}

impl SeriesConfig {
    /// The paper's grid: 5-minute rounds from `start`.
    pub fn five_minute(start: SimTime) -> SeriesConfig {
        SeriesConfig { start, interval: SimDuration::from_mins(5) }
    }

    /// Timestamp of round `i`.
    pub fn timestamp(&self, i: usize) -> SimTime {
        self.start + SimDuration::from_micros(self.interval.as_micros() * i as u64)
    }

    /// Number of rounds in `[start, end)`.
    pub fn rounds_until(&self, end: SimTime) -> usize {
        if end <= self.start {
            return 0;
        }
        (end.since(self.start).as_micros() / self.interval.as_micros().max(1)) as usize
    }
}

/// The measured RTT series for one link.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSeries {
    /// Sampling grid.
    pub cfg: SeriesConfig,
    /// Near-end RTTs in milliseconds (`NaN` = no response that round).
    pub near_ms: Vec<f64>,
    /// Far-end RTTs in milliseconds (`NaN` = no response).
    pub far_ms: Vec<f64>,
    /// Rounds whose far response came from an unexpected address.
    pub far_addr_mismatches: usize,
    /// Per-round path fingerprints (hop-set hash of the TTL ladder's near
    /// and far responders; `0` = unknown round). May be empty on hand-built
    /// series, in which case the pipeline treats every round as path-unknown
    /// (no change attribution).
    pub path_fp: Vec<u64>,
}

impl LinkSeries {
    /// Empty series on a grid.
    pub fn new(cfg: SeriesConfig) -> LinkSeries {
        LinkSeries {
            cfg,
            near_ms: Vec::new(),
            far_ms: Vec::new(),
            far_addr_mismatches: 0,
            path_fp: Vec::new(),
        }
    }

    /// Append one round's sample.
    pub fn push(&mut self, s: &TslpSample) {
        self.near_ms.push(s.near.map(|d| d.as_millis_f64()).unwrap_or(f64::NAN));
        self.far_ms.push(s.far.map(|d| d.as_millis_f64()).unwrap_or(f64::NAN));
        self.path_fp.push(s.path_fp);
        if s.far.is_some() && !s.far_addr_ok {
            self.far_addr_mismatches += 1;
        }
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.far_ms.len()
    }
    /// True when no rounds are recorded.
    pub fn is_empty(&self) -> bool {
        self.far_ms.is_empty()
    }

    /// Fraction of rounds with a valid far RTT.
    pub fn far_validity(&self) -> f64 {
        if self.far_ms.is_empty() {
            return 0.0;
        }
        self.far_ms.iter().filter(|v| v.is_finite()).count() as f64 / self.far_ms.len() as f64
    }

    /// Fraction of answered far rounds whose responder matched expectations.
    pub fn far_addr_consistency(&self) -> f64 {
        let answered = self.far_ms.iter().filter(|v| v.is_finite()).count();
        if answered == 0 {
            return 1.0;
        }
        1.0 - self.far_addr_mismatches as f64 / answered as f64
    }

    /// The far series with missing samples dropped, plus the original round
    /// index of each retained sample (for mapping detector output back to
    /// timestamps).
    pub fn far_clean(&self) -> (Vec<f64>, Vec<usize>) {
        clean(&self.far_ms)
    }

    /// Same for the near series.
    pub fn near_clean(&self) -> (Vec<f64>, Vec<usize>) {
        clean(&self.near_ms)
    }

    /// Timestamp of round `i`.
    pub fn timestamp(&self, i: usize) -> SimTime {
        self.cfg.timestamp(i)
    }

    /// Restrict to rounds within `[from, to)` (used for per-phase analysis).
    pub fn window(&self, from: SimTime, to: SimTime) -> LinkSeries {
        let lo = self.cfg.rounds_until(from).min(self.len());
        let hi = self.cfg.rounds_until(to).min(self.len());
        LinkSeries {
            cfg: SeriesConfig { start: self.cfg.timestamp(lo), interval: self.cfg.interval },
            near_ms: self.near_ms[lo..hi].to_vec(),
            far_ms: self.far_ms[lo..hi].to_vec(),
            far_addr_mismatches: 0,
            path_fp: self.path_fp.get(lo..hi).map(<[u64]>::to_vec).unwrap_or_default(),
        }
    }

    /// Round indices where the measured path changed: position of the first
    /// round of each new path regime. A change is declared between
    /// consecutive *known* fingerprints that differ; unknown rounds
    /// (fingerprint `0`, e.g. rate-limited) never produce one, so a limiter
    /// eating probes cannot fake a routing event. Empty when the series
    /// predates fingerprinting.
    pub fn path_change_rounds(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut last = 0u64;
        for (i, &fp) in self.path_fp.iter().enumerate() {
            if fp == 0 {
                continue;
            }
            if last != 0 && fp != last {
                out.push(i);
            }
            last = fp;
        }
        out
    }
}

fn clean(v: &[f64]) -> (Vec<f64>, Vec<usize>) {
    let mut vals = Vec::with_capacity(v.len());
    let mut idx = Vec::with_capacity(v.len());
    for (i, &x) in v.iter().enumerate() {
        if x.is_finite() {
            vals.push(x);
            idx.push(i);
        }
    }
    (vals, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_prober::tslp::TslpSample;

    fn sample(near: Option<f64>, far: Option<f64>, ok: bool) -> TslpSample {
        TslpSample {
            t: SimTime::ZERO,
            near: near.map(SimDuration::from_secs_f64),
            far: far.map(SimDuration::from_secs_f64),
            near_addr_ok: near.is_some(),
            far_addr_ok: ok && far.is_some(),
            path_fp: if near.is_some() && far.is_some() { 0xFEED } else { 0 },
        }
    }

    #[test]
    fn push_and_validity() {
        let mut s = LinkSeries::new(SeriesConfig::five_minute(SimTime::ZERO));
        s.push(&sample(Some(0.001), Some(0.002), true));
        s.push(&sample(Some(0.001), None, false));
        s.push(&sample(None, Some(0.030), true));
        assert_eq!(s.len(), 3);
        assert!((s.far_validity() - 2.0 / 3.0).abs() < 1e-9);
        assert!(s.far_ms[1].is_nan());
        assert!((s.far_ms[2] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn clean_preserves_indices() {
        let mut s = LinkSeries::new(SeriesConfig::five_minute(SimTime::ZERO));
        for (i, far) in [Some(0.001), None, Some(0.003), None, Some(0.005)].iter().enumerate() {
            let _ = i;
            s.push(&sample(Some(0.001), *far, true));
        }
        let (vals, idx) = s.far_clean();
        assert_eq!(idx, vec![0, 2, 4]);
        assert!((vals[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn addr_consistency() {
        let mut s = LinkSeries::new(SeriesConfig::five_minute(SimTime::ZERO));
        s.push(&sample(Some(0.001), Some(0.002), true));
        s.push(&sample(Some(0.001), Some(0.002), false));
        assert!((s.far_addr_consistency() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn path_change_rounds_skip_unknown() {
        let mut s = LinkSeries::new(SeriesConfig::five_minute(SimTime::ZERO));
        for _ in 0..4 {
            s.push(&sample(Some(0.001), Some(0.002), true));
        }
        // Dark round, then the path flips (different fingerprint regime).
        s.push(&sample(Some(0.001), None, false));
        let mut flipped = sample(Some(0.001), Some(0.002), true);
        flipped.path_fp = 0xBEEF;
        s.push(&flipped);
        s.push(&flipped);
        assert_eq!(s.path_change_rounds(), vec![5]);
        // The dark round alone never counts as a change.
        let mut d = LinkSeries::new(SeriesConfig::five_minute(SimTime::ZERO));
        d.push(&sample(Some(0.001), Some(0.002), true));
        d.push(&sample(Some(0.001), None, false));
        d.push(&sample(Some(0.001), Some(0.002), true));
        assert!(d.path_change_rounds().is_empty());
    }

    #[test]
    fn timestamps_on_grid() {
        let cfg = SeriesConfig::five_minute(SimTime::from_date(2016, 2, 22));
        assert_eq!(cfg.timestamp(12), SimTime::from_datetime(2016, 2, 22, 1, 0, 0));
        assert_eq!(cfg.rounds_until(SimTime::from_date(2016, 2, 23)), 288);
        assert_eq!(cfg.rounds_until(SimTime::from_date(2016, 2, 21)), 0);
    }

    #[test]
    fn window_slices_rounds() {
        let start = SimTime::from_date(2016, 3, 1);
        let mut s = LinkSeries::new(SeriesConfig::five_minute(start));
        for i in 0..288 * 3 {
            s.push(&sample(Some(0.001), Some(0.001 * (i % 7) as f64), true));
        }
        let day2 = s.window(SimTime::from_date(2016, 3, 2), SimTime::from_date(2016, 3, 3));
        assert_eq!(day2.len(), 288);
        assert_eq!(day2.cfg.start, SimTime::from_date(2016, 3, 2));
    }
}
