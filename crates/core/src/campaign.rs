//! Driving a TSLP measurement campaign over simulated months.
//!
//! The paper probes *every* discovered link every 5 minutes for 13 months
//! (§4). Replaying that literally against the simulator is ~10⁹ probe walks
//! for the Liquid Telecom vantage point alone, so the runner supports an
//! explicitly documented **screening pass** (see DESIGN.md): each link is
//! first sampled coarsely (hourly); only links whose far-RTT spread could
//! possibly clear the smallest Table 1 threshold get the full five-minute
//! campaign. Links screened out keep their coarse series — which the
//! detector handles like any other series and (by construction of the
//! spread gate) can never flag. Disable screening to run paper-exact.

use crate::series::{LinkSeries, SeriesConfig};
use ixp_prober::tslp::{tslp_probe, TslpConfig, TslpTarget};
use ixp_simnet::net::{Network, ProbeCtx};
use ixp_simnet::node::NodeId;
use ixp_simnet::rng::mix;
use ixp_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Screening-pass settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Screening {
    /// Coarse sampling interval.
    pub interval: SimDuration,
    /// Full campaign is run only when the far spread (95th − 5th percentile)
    /// reaches this many ms. Must stay below the smallest threshold swept.
    pub spread_gate_ms: f64,
}

impl Default for Screening {
    fn default() -> Self {
        Screening { interval: SimDuration::from_hours(1), spread_gate_ms: 4.0 }
    }
}

/// Campaign settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// First round.
    pub start: SimTime,
    /// End of the campaign (exclusive).
    pub end: SimTime,
    /// Full-fidelity round interval (the paper's 5 minutes).
    pub interval: SimDuration,
    /// Per-round probing policy.
    pub tslp: TslpProbing,
    /// Optional screening pass; `None` = paper-exact probing for all links.
    pub screening: Option<Screening>,
    /// Worker threads for [`measure_vp`]/[`measure_vp_links`] fan-out:
    /// `0` = one per available core, `1` = sequential. Output is identical
    /// at every thread count (each target's walk is an independent pure
    /// function of the shared substrate).
    pub threads: usize,
}

/// Serializable subset of [`TslpConfig`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TslpProbing {
    /// Attempts per end per round.
    pub attempts: u32,
    /// Probe pacing.
    pub pacing: SimDuration,
}

impl Default for TslpProbing {
    fn default() -> Self {
        TslpProbing { attempts: 2, pacing: SimDuration::from_millis(10) }
    }
}

impl From<TslpProbing> for TslpConfig {
    fn from(p: TslpProbing) -> TslpConfig {
        TslpConfig { attempts: p.attempts, pacing: p.pacing }
    }
}

impl CampaignConfig {
    /// The paper's campaign over `[start, end)` with screening enabled.
    pub fn paper(start: SimTime, end: SimTime) -> CampaignConfig {
        CampaignConfig {
            start,
            end,
            interval: SimDuration::from_mins(5),
            tslp: TslpProbing::default(),
            screening: Some(Screening::default()),
            threads: 0,
        }
    }

    /// Paper-exact: every link at 5 minutes, no screening.
    pub fn exact(start: SimTime, end: SimTime) -> CampaignConfig {
        CampaignConfig { screening: None, ..CampaignConfig::paper(start, end) }
    }
}

fn run_grid(
    net: &Network,
    ctx: &mut ProbeCtx,
    vp: NodeId,
    target: &TslpTarget,
    tslp: &TslpConfig,
    grid: SeriesConfig,
    end: SimTime,
) -> LinkSeries {
    let mut series = LinkSeries::new(grid);
    let rounds = grid.rounds_until(end);
    for i in 0..rounds {
        let t = grid.timestamp(i);
        let s = tslp_probe(net, ctx, vp, target, tslp, t);
        series.push(&s);
    }
    series
}

/// Spread (95th − 5th percentile) of the finite far samples, in ms.
pub fn far_spread_ms(series: &LinkSeries) -> f64 {
    let (mut vals, _) = series.far_clean();
    let n = vals.len();
    if n < 8 {
        return 0.0;
    }
    // Two percentiles, not a full sort: select the 5th, then the 95th within
    // the upper partition the first selection leaves behind.
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN after clean");
    let lo_i = (n as f64 * 0.05) as usize;
    let hi_i = ((n as f64 * 0.95) as usize).min(n - 1);
    let (_, &mut lo, upper) = vals.select_nth_unstable_by(lo_i, cmp);
    let hi = if hi_i == lo_i {
        lo
    } else {
        *upper.select_nth_unstable_by(hi_i - lo_i - 1, cmp).1
    };
    hi - lo
}

/// Number of far samples elevated at least `gate_ms` above the series
/// median. This — not a percentile spread — is the screening statistic: a
/// two-month congestion episode inside a 13-month campaign elevates only a
/// few percent of samples, which a 95th percentile can miss entirely, but
/// still produces hundreds of excursions.
pub fn far_excursions(series: &LinkSeries, gate_ms: f64) -> usize {
    let (mut vals, _) = series.far_clean();
    let n = vals.len();
    if n < 8 {
        return 0;
    }
    let median = *vals
        .select_nth_unstable_by(n / 2, |a, b| a.partial_cmp(b).expect("NaN after clean"))
        .1;
    vals.iter().filter(|&&v| v > median + gate_ms).count()
}

/// Measure one link over the campaign window. Returns the series (coarse if
/// the screening pass ruled congestion out) and whether screening short-
/// circuited the link.
pub fn measure_link(
    net: &Network,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
) -> (LinkSeries, bool) {
    let tslp: TslpConfig = cfg.tslp.into();
    // A fresh ctx per target, seeded from the target identity: the series is
    // a pure function of (net, vp, target, cfg), independent of which worker
    // thread runs it or in what order — the ordering guarantee measure_vp
    // relies on.
    let mut ctx = net.probe_ctx(mix(&[
        vp.0 as u64,
        target.dst.0 as u64,
        target.near_ttl as u64,
        target.far_ttl as u64,
    ]));
    if let Some(sc) = cfg.screening {
        let coarse_grid = SeriesConfig { start: cfg.start, interval: sc.interval };
        let coarse = run_grid(net, &mut ctx, vp, target, &tslp, coarse_grid, cfg.end);
        // A link stays screened out only when the coarse pass saw fewer
        // than a handful of samples elevated past the smallest threshold —
        // the necessary condition for any ≥30-minute, ≥5 ms level shift.
        if far_excursions(&coarse, sc.spread_gate_ms) < 4 {
            return (coarse, true);
        }
        // The coarse pass advanced this ctx's lazy queue anchors through the
        // whole window; rewind them before re-reading it at full fidelity.
        ctx.reset_queue_state(net);
    }
    let grid = SeriesConfig { start: cfg.start, interval: cfg.interval };
    (run_grid(net, &mut ctx, vp, target, &tslp, grid, cfg.end), false)
}

/// Resolve a `threads` knob: 0 = one worker per available core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Fan `items` out over a work-stealing pool of `threads` workers, each
/// holding private per-worker state built by `init` (a detector scratch, a
/// probe context — anything that should be reused across items but never
/// shared). Results come back in item order and are identical to the
/// sequential run at any thread count, provided `f` is a pure function of
/// `(state, index, item)` where `state` carries no cross-item information —
/// the contract every caller in this workspace upholds.
///
/// `threads = 1` (or a single item) runs inline on the calling thread with
/// one state, no pool.
pub fn pool_map_with<T, R, S>(
    threads: usize,
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        let mut state = init();
        return items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
    }
    // Work-stealing by atomic claim counter: workers grab the next unclaimed
    // item index and write its result into that index's slot, so output
    // order is item order no matter which worker finishes when.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let r = f(&mut state, i, item);
                    *slots[i].lock().expect("slot lock poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock poisoned").expect("worker filled every slot"))
        .collect()
}

/// Measure a whole target list, fanning targets out over `cfg.threads`
/// workers. Results come back in target order and are bit-identical to the
/// sequential run at any thread count: each target owns a private
/// [`ProbeCtx`] and the substrate is only read.
pub fn measure_vp_links(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
) -> Vec<(LinkSeries, bool)> {
    pool_map_with(cfg.threads, targets, || (), |_, _, t| measure_link(net, vp, t, cfg))
}

/// Measure a whole target list; returns per-target series plus the count of
/// links the screening pass short-circuited.
pub fn measure_vp(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
) -> (Vec<LinkSeries>, usize) {
    let results = measure_vp_links(net, vp, targets, cfg);
    let screened = results.iter().filter(|(_, sc)| *sc).count();
    (results.into_iter().map(|(s, _)| s).collect(), screened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{assess_link, AssessConfig};
    use ixp_prober::testutil::{congested_line, line_topology};
    use ixp_simnet::prelude::Ipv4;

    fn target() -> TslpTarget {
        TslpTarget {
            dst: Ipv4::new(10, 0, 2, 2),
            near_ttl: 1,
            far_ttl: 2,
            near_addr: Ipv4::new(10, 0, 0, 1),
            far_addr: Ipv4::new(10, 0, 1, 2),
        }
    }

    #[test]
    fn healthy_link_is_screened_out() {
        let (net, vp, _) = line_topology(50);
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 8));
        let (series, screened) = measure_link(&net, vp, &target(), &cfg);
        assert!(screened, "clean line should not need the full campaign");
        assert_eq!(series.cfg.interval, SimDuration::from_hours(1));
        assert!(!assess_link(&series, &AssessConfig::default()).flagged);
    }

    /// Overload only between 10:00 and 16:00 — a diurnal congestion pulse.
    struct MiddayPulse;
    impl ixp_simnet::link::OfferedLoad for MiddayPulse {
        fn bps(&self, t: SimTime) -> f64 {
            if (10.0..16.0).contains(&t.hour_of_day()) {
                1.3e8
            } else {
                2e7
            }
        }
        fn peak_bps(&self) -> f64 {
            1.3e8
        }
    }

    #[test]
    fn congested_link_gets_full_fidelity() {
        let (mut net, vp, _) = congested_line(51, 1.3);
        // Replace the constant overload with a midday pulse: constant
        // saturation produces no level *shifts* (nothing for TSLP to see),
        // a diurnal pulse does.
        net.link_mut(ixp_simnet::prelude::LinkId(1))
            .set_load(ixp_simnet::prelude::Dir::AtoB, std::sync::Arc::new(MiddayPulse));
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 15));
        let (series, screened) = measure_link(&net, vp, &target(), &cfg);
        assert!(!screened, "spread {}", far_spread_ms(&series));
        assert_eq!(series.cfg.interval, SimDuration::from_mins(5));
        let a = assess_link(&series, &AssessConfig::default());
        assert!(a.flagged);
        assert!(a.diurnal);
        assert!(a.congested);
    }

    #[test]
    fn exact_mode_never_screens() {
        let (net, vp, _) = line_topology(52);
        let cfg = CampaignConfig::exact(SimTime::ZERO, SimTime::from_date(2016, 1, 3));
        let (series, screened) = measure_link(&net, vp, &target(), &cfg);
        assert!(!screened);
        assert_eq!(series.len(), 2 * 288);
    }

    #[test]
    fn pool_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1usize, 2, 3, 8] {
            // Per-worker state: a reused buffer, as a stand-in for a scratch.
            let got = pool_map_with(
                threads,
                &items,
                Vec::<u64>::new,
                |buf, i, &x| {
                    buf.push(x);
                    assert_eq!(items[i], x);
                    x * x
                },
            );
            assert_eq!(got, want, "threads={threads}");
        }
        // Empty input is fine.
        assert!(pool_map_with(4, &[] as &[u64], || (), |_, _, &x| x).is_empty());
    }

    #[test]
    fn measure_vp_counts_screening() {
        let (net, vp, _) = line_topology(53);
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 5));
        let targets = vec![target(); 3];
        let (series, screened) = measure_vp(&net, vp, &targets, &cfg);
        assert_eq!(series.len(), 3);
        assert_eq!(screened, 3);
    }
}
