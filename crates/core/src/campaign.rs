//! Driving a TSLP measurement campaign over simulated months.
//!
//! The paper probes *every* discovered link every 5 minutes for 13 months
//! (§4). Replaying that literally against the simulator is ~10⁹ probe walks
//! for the Liquid Telecom vantage point alone, so the runner supports an
//! explicitly documented **screening pass** (see DESIGN.md): each link is
//! first sampled coarsely (hourly); only links whose far-RTT spread could
//! possibly clear the smallest Table 1 threshold get the full five-minute
//! campaign. Links screened out keep their coarse series — which the
//! detector handles like any other series and (by construction of the
//! spread gate) can never flag. Disable screening to run paper-exact.

use crate::checkpoint::CheckpointStore;
use crate::series::{LinkSeries, SeriesConfig};
use ixp_obs::{Histogram, LinkEvent, LinkKey, LinkRecorder, NoopRecorder, Recorder, SheetRecorder};
use ixp_prober::tslp::{tslp_probe_rec, TslpConfig, TslpTarget};
use ixp_simnet::net::{Network, ProbeCtx};
use ixp_simnet::node::NodeId;
use ixp_simnet::rng::mix;
use ixp_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Telemetry key for a measured link: near/far interface addresses.
pub fn link_key(target: &TslpTarget) -> LinkKey {
    LinkKey::new(target.near_addr.0, target.far_addr.0)
}

/// Screening-pass settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Screening {
    /// Coarse sampling interval.
    pub interval: SimDuration,
    /// Full campaign is run only when the far spread (95th − 5th percentile)
    /// reaches this many ms. Must stay below the smallest threshold swept.
    pub spread_gate_ms: f64,
}

impl Default for Screening {
    fn default() -> Self {
        Screening { interval: SimDuration::from_hours(1), spread_gate_ms: 4.0 }
    }
}

/// Campaign settings.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// First round.
    pub start: SimTime,
    /// End of the campaign (exclusive).
    pub end: SimTime,
    /// Full-fidelity round interval (the paper's 5 minutes).
    pub interval: SimDuration,
    /// Per-round probing policy.
    pub tslp: TslpProbing,
    /// Optional screening pass; `None` = paper-exact probing for all links.
    pub screening: Option<Screening>,
    /// Worker threads for [`measure_vp`]/[`measure_vp_links`] fan-out:
    /// `0` = one per available core, `1` = sequential. Output is identical
    /// at every thread count (each target's walk is an independent pure
    /// function of the shared substrate).
    pub threads: usize,
}

/// Serializable subset of [`TslpConfig`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TslpProbing {
    /// Attempts per end per round.
    pub attempts: u32,
    /// Probe pacing.
    pub pacing: SimDuration,
    /// Extra wait before each retry, for outwaiting ICMP rate limiters
    /// (`ZERO` = legacy back-to-back retries).
    pub retry_backoff: SimDuration,
    /// Deterministic jitter on the backoff, as a fraction of it.
    pub retry_jitter: f64,
}

impl Default for TslpProbing {
    fn default() -> Self {
        TslpProbing {
            attempts: 2,
            pacing: SimDuration::from_millis(10),
            retry_backoff: SimDuration::ZERO,
            retry_jitter: 0.0,
        }
    }
}

impl From<TslpProbing> for TslpConfig {
    fn from(p: TslpProbing) -> TslpConfig {
        TslpConfig {
            attempts: p.attempts,
            pacing: p.pacing,
            retry_backoff: p.retry_backoff,
            retry_jitter: p.retry_jitter,
        }
    }
}

impl CampaignConfig {
    /// The paper's campaign over `[start, end)` with screening enabled.
    pub fn paper(start: SimTime, end: SimTime) -> CampaignConfig {
        CampaignConfig {
            start,
            end,
            interval: SimDuration::from_mins(5),
            tslp: TslpProbing::default(),
            screening: Some(Screening::default()),
            threads: 0,
        }
    }

    /// Paper-exact: every link at 5 minutes, no screening.
    pub fn exact(start: SimTime, end: SimTime) -> CampaignConfig {
        CampaignConfig { screening: None, ..CampaignConfig::paper(start, end) }
    }
}

fn run_grid<P: Recorder>(
    net: &Network,
    ctx: &mut ProbeCtx,
    vp: NodeId,
    target: &TslpTarget,
    tslp: &TslpConfig,
    (grid, end): (SeriesConfig, SimTime),
    prec: &P,
) -> LinkSeries {
    let mut series = LinkSeries::new(grid);
    let rounds = grid.rounds_until(end);
    for i in 0..rounds {
        let t = grid.timestamp(i);
        let s = tslp_probe_rec(net, ctx, vp, target, tslp, t, prec);
        series.push(&s);
    }
    series
}

/// Spread (95th − 5th percentile) of the finite far samples, in ms.
pub fn far_spread_ms(series: &LinkSeries) -> f64 {
    let (mut vals, _) = series.far_clean();
    let n = vals.len();
    if n < 8 {
        return 0.0;
    }
    // Two percentiles, not a full sort: select the 5th, then the 95th within
    // the upper partition the first selection leaves behind.
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN after clean");
    let lo_i = (n as f64 * 0.05) as usize;
    let hi_i = ((n as f64 * 0.95) as usize).min(n - 1);
    let (_, &mut lo, upper) = vals.select_nth_unstable_by(lo_i, cmp);
    let hi = if hi_i == lo_i {
        lo
    } else {
        *upper.select_nth_unstable_by(hi_i - lo_i - 1, cmp).1
    };
    hi - lo
}

/// Number of far samples elevated at least `gate_ms` above the series
/// median. This — not a percentile spread — is the screening statistic: a
/// two-month congestion episode inside a 13-month campaign elevates only a
/// few percent of samples, which a 95th percentile can miss entirely, but
/// still produces hundreds of excursions.
pub fn far_excursions(series: &LinkSeries, gate_ms: f64) -> usize {
    let (mut vals, _) = series.far_clean();
    let n = vals.len();
    if n < 8 {
        return 0;
    }
    let median = *vals
        .select_nth_unstable_by(n / 2, |a, b| a.partial_cmp(b).expect("NaN after clean"))
        .1;
    vals.iter().filter(|&&v| v > median + gate_ms).count()
}

/// The shared body of [`measure_link`]/[`measure_link_rec`], generic over
/// the probe-event recorder so the uninstrumented path monomorphizes the
/// telemetry calls away entirely. Also returns the total probe-round count
/// (coarse + full) for the telemetry ledger.
fn measure_link_impl<P: Recorder>(
    net: &Network,
    ctx: &mut ProbeCtx,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
    prec: &P,
) -> (LinkSeries, bool, u64) {
    let tslp: TslpConfig = cfg.tslp.into();
    // Rebase the caller's ctx onto this target's identity: the series is a
    // pure function of (net, vp, target, cfg), independent of which worker
    // thread runs it, in what order, or what the ctx measured before — the
    // ordering guarantee measure_vp relies on. Rebasing is O(1); a worker
    // reuses one ctx across every link it claims instead of rebuilding
    // O(links + nodes) of state per link.
    ctx.rebase(
        net,
        mix(&[
            vp.0 as u64,
            target.dst.0 as u64,
            target.near_ttl as u64,
            target.far_ttl as u64,
        ]),
    );
    let mut rounds = 0u64;
    if let Some(sc) = cfg.screening {
        let coarse_grid = SeriesConfig { start: cfg.start, interval: sc.interval };
        let coarse = run_grid(net, ctx, vp, target, &tslp, (coarse_grid, cfg.end), prec);
        rounds += coarse.len() as u64;
        // A link stays screened out only when the coarse pass saw fewer
        // than a handful of samples elevated past the smallest threshold —
        // the necessary condition for any ≥30-minute, ≥5 ms level shift.
        if far_excursions(&coarse, sc.spread_gate_ms) < 4 {
            return (coarse, true, rounds);
        }
        // The coarse pass advanced this ctx's lazy queue anchors through the
        // whole window; rewind them before re-reading it at full fidelity.
        ctx.reset_queue_state(net);
    }
    let grid = SeriesConfig { start: cfg.start, interval: cfg.interval };
    let full = run_grid(net, ctx, vp, target, &tslp, (grid, cfg.end), prec);
    rounds += full.len() as u64;
    (full, false, rounds)
}

/// Measure one link over the campaign window. Returns the series (coarse if
/// the screening pass ruled congestion out) and whether screening short-
/// circuited the link.
pub fn measure_link(
    net: &Network,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
) -> (LinkSeries, bool) {
    measure_link_in(net, &mut ProbeCtx::default(), vp, target, cfg)
}

/// [`measure_link`] reusing a caller-owned [`ProbeCtx`]. The context is
/// rebased onto the target's probe-id stream first, so the series is
/// bit-identical to a fresh-context measurement; what's saved is the
/// O(links + nodes) per-link context rebuild — the per-worker reuse pattern
/// every campaign pool runs.
pub fn measure_link_in(
    net: &Network,
    ctx: &mut ProbeCtx,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
) -> (LinkSeries, bool) {
    let (series, screened, _) = measure_link_impl(net, ctx, vp, target, cfg, &NoopRecorder);
    (series, screened)
}

/// [`measure_link`] with telemetry: per-probe events (sent / answered /
/// timed-out / retried / rate-limited) accumulate in a link-local
/// [`LinkRecorder`] and fold into `rec` once, as a per-link
/// [`ixp_obs::ProbeLedger`]. The near/far RTT histograms are derived from
/// the retained series here, with one sequential scan per link — the probe
/// loop itself only bumps counters. With a disabled recorder the measured
/// series is bit-identical to [`measure_link`] — telemetry only observes.
pub fn measure_link_rec<R: Recorder>(
    net: &Network,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
    rec: &R,
) -> (LinkSeries, bool) {
    measure_link_rec_in(net, &mut ProbeCtx::default(), vp, target, cfg, rec)
}

/// [`measure_link_rec`] reusing a caller-owned [`ProbeCtx`] (see
/// [`measure_link_in`]).
pub fn measure_link_rec_in<R: Recorder>(
    net: &Network,
    ctx: &mut ProbeCtx,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
    rec: &R,
) -> (LinkSeries, bool) {
    if !rec.enabled() {
        return measure_link_in(net, ctx, vp, target, cfg);
    }
    let lr = LinkRecorder::new();
    let (series, screened, rounds) = measure_link_impl(net, ctx, vp, target, cfg, &lr);
    lr.add_rounds(rounds);
    if screened {
        lr.screened_out();
    }
    lr.fold_into(rec, link_key(target));
    let hist_of = |vals: &[f64]| {
        let mut h = Histogram::new();
        for &v in vals {
            h.record(v); // NaN holes (missed rounds) carry no magnitude
        }
        h
    };
    rec.merge_hist("tslp_near_rtt_ms", &hist_of(&series.near_ms));
    rec.merge_hist("tslp_far_rtt_ms", &hist_of(&series.far_ms));
    (series, screened)
}

/// Fingerprint of everything in a [`CampaignConfig`] that shapes measured
/// series. Bound into every checkpoint so a config change invalidates old
/// checkpoints instead of replaying them. `threads` is deliberately
/// excluded: thread count never changes results, so a checkpoint taken at
/// one thread count must resume at any other.
pub fn campaign_fingerprint(cfg: &CampaignConfig) -> u64 {
    let (sc_interval, sc_gate) = match cfg.screening {
        Some(sc) => (sc.interval.as_micros(), sc.spread_gate_ms.to_bits()),
        None => (0, 0),
    };
    mix(&[
        cfg.start.0,
        cfg.end.0,
        cfg.interval.as_micros(),
        cfg.tslp.attempts as u64,
        cfg.tslp.pacing.as_micros(),
        cfg.tslp.retry_backoff.as_micros(),
        cfg.tslp.retry_jitter.to_bits(),
        sc_interval,
        sc_gate,
    ])
}

/// [`measure_link`] through a [`CheckpointStore`]: replay the series from
/// disk when a checkpoint for this exact target + campaign config exists,
/// otherwise measure and persist. A failed write is swallowed — persistence
/// is an optimization, never a correctness requirement.
pub fn measure_link_checkpointed(
    net: &Network,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
    store: &CheckpointStore,
) -> (LinkSeries, bool) {
    measure_link_checkpointed_rec(net, vp, target, cfg, store, &NoopRecorder)
}

/// [`measure_link_checkpointed`] with telemetry: checkpoint replays and
/// persists are recorded as per-link ledger events plus the
/// `checkpoint_hits` / `checkpoint_writes` counters.
pub fn measure_link_checkpointed_rec<R: Recorder>(
    net: &Network,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
    store: &CheckpointStore,
    rec: &R,
) -> (LinkSeries, bool) {
    measure_link_checkpointed_rec_in(net, &mut ProbeCtx::default(), vp, target, cfg, store, rec)
}

/// [`measure_link_checkpointed_rec`] reusing a caller-owned [`ProbeCtx`]
/// (see [`measure_link_in`]); a checkpoint hit never touches the context.
pub fn measure_link_checkpointed_rec_in<R: Recorder>(
    net: &Network,
    ctx: &mut ProbeCtx,
    vp: NodeId,
    target: &TslpTarget,
    cfg: &CampaignConfig,
    store: &CheckpointStore,
    rec: &R,
) -> (LinkSeries, bool) {
    let key = CheckpointStore::key_for(vp, target);
    if let Some(hit) = store.load(key) {
        rec.add("checkpoint_hits", 1);
        rec.link_event(link_key(target), LinkEvent::CheckpointHit);
        return hit;
    }
    let (series, screened) = measure_link_rec_in(net, ctx, vp, target, cfg, rec);
    if store.store(key, &series, screened).is_ok() {
        rec.add("checkpoint_writes", 1);
        rec.link_event(link_key(target), LinkEvent::CheckpointWrite);
    }
    (series, screened)
}

/// [`measure_vp_links`] through an optional [`CheckpointStore`]: finished
/// links replay from disk, the rest are measured (and checkpointed) by the
/// worker pool. With the same config and substrate, a resumed run is
/// bit-identical to an uninterrupted one.
pub fn measure_vp_links_checkpointed(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
    store: Option<&CheckpointStore>,
) -> Vec<(LinkSeries, bool)> {
    measure_vp_links_checkpointed_rec(net, vp, targets, cfg, store, &NoopRecorder)
}

/// Per-worker pool state for telemetry runs: each worker accumulates into a
/// private [`MetricSheet`](ixp_obs::MetricSheet) (no shared-state contention
/// on the probe hot path) that folds into the campaign recorder exactly once
/// — on drop, so a quarantined worker state still surrenders the telemetry
/// of the items it completed. All sheet merges are commutative and
/// associative, so drain order (and thread count) never shows in the totals.
struct DrainSheet<'a, R: Recorder> {
    local: SheetRecorder,
    out: &'a R,
}

impl<'a, R: Recorder> DrainSheet<'a, R> {
    fn new(out: &'a R) -> Self {
        DrainSheet { local: SheetRecorder::new(), out }
    }
}

impl<R: Recorder> Drop for DrainSheet<'_, R> {
    fn drop(&mut self) {
        self.out.fold(&self.local.take_sheet());
    }
}

/// [`measure_vp_links_checkpointed`] with telemetry (see
/// [`measure_vp_links_rec`]); checkpoint replays and writes land in the
/// per-link ledgers.
pub fn measure_vp_links_checkpointed_rec<R: Recorder + Sync>(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
    store: Option<&CheckpointStore>,
    rec: &R,
) -> Vec<(LinkSeries, bool)> {
    if !rec.enabled() {
        // Off path: no worker sheets, no per-link recorders — the pool runs
        // exactly as it did before telemetry existed.
        return match store {
            Some(st) => pool_map_with(cfg.threads, targets, ProbeCtx::default, |ctx, _, t| {
                measure_link_checkpointed_rec_in(net, ctx, vp, t, cfg, st, &NoopRecorder)
            }),
            None => measure_vp_links(net, vp, targets, cfg),
        };
    }
    match store {
        Some(st) => pool_map_rec(
            cfg.threads,
            targets,
            || (ProbeCtx::default(), DrainSheet::new(rec)),
            |(ctx, ds), _, t| measure_link_checkpointed_rec_in(net, ctx, vp, t, cfg, st, &ds.local),
            rec,
            "campaign",
            |_, t| link_key(t).label(),
        ),
        None => measure_vp_links_rec(net, vp, targets, cfg, rec),
    }
}

/// The streaming campaign: measure each link and *consume* its series in
/// the same worker pass.
///
/// [`measure_vp_links_checkpointed_rec`] materializes every [`LinkSeries`]
/// before anything downstream runs, so a continent-scale campaign (100k+
/// links × a year of five-minute rounds) peaks at O(links × series length)
/// resident memory. Here each worker measures a link (replaying its
/// checkpoint shard when one exists), hands the series to `consume` — the
/// detection/assessment stage — and drops it the moment the verdict is out:
/// peak series memory is O(active windows), one series per live worker.
///
/// `consume` runs under the same purity contract as the pool itself: a pure
/// function of `(state, index, target, series, screened)` — so results come
/// back in target order, bit-identical at any thread count, and a panic
/// quarantines the link as a [`WorkerFailure`] (the caller can re-obtain
/// the dropped series via [`measure_link_checkpointed`]: the measurement is
/// a pure function, and with a store it replays from the shard the worker
/// already wrote).
///
/// On the telemetry path two gauges observe the streaming promise:
/// `campaign_active_windows` (high-water mark of series alive at once) and
/// `campaign_peak_rss_mb` (process peak RSS after the pass, where procfs
/// exposes it). Gauges are observation-side and excluded from the
/// deterministic manifest form.
#[allow(clippy::too_many_arguments)]
pub fn stream_vp_links_rec<T, S, R>(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
    store: Option<&CheckpointStore>,
    rec: &R,
    init: impl Fn() -> S + Sync,
    consume: impl Fn(&mut S, usize, &TslpTarget, LinkSeries, bool) -> T + Sync,
) -> Vec<Result<T, WorkerFailure>>
where
    T: Send,
    R: Recorder + Sync,
{
    if !rec.enabled() {
        return pool_try_map_rec(
            cfg.threads,
            targets,
            || (init(), ProbeCtx::default()),
            |(s, ctx), i, t| {
                let (series, screened) = match store {
                    Some(st) => {
                        measure_link_checkpointed_rec_in(net, ctx, vp, t, cfg, st, &NoopRecorder)
                    }
                    None => measure_link_in(net, ctx, vp, t, cfg),
                };
                consume(s, i, t, series, screened)
            },
            &NoopRecorder,
            "campaign",
            |_, t| link_key(t).label(),
        );
    }
    let active = AtomicUsize::new(0);
    let out = pool_try_map_rec(
        cfg.threads,
        targets,
        || (init(), ProbeCtx::default(), DrainSheet::new(rec)),
        |(s, ctx, ds), i, t| {
            let (series, screened) = match store {
                Some(st) => measure_link_checkpointed_rec_in(net, ctx, vp, t, cfg, st, &ds.local),
                None => measure_link_rec_in(net, ctx, vp, t, cfg, &ds.local),
            };
            let alive = active.fetch_add(1, Ordering::Relaxed) + 1;
            ds.local.gauge("campaign_active_windows", alive as f64);
            let r = consume(s, i, t, series, screened);
            active.fetch_sub(1, Ordering::Relaxed);
            r
        },
        rec,
        "campaign",
        |_, t| link_key(t).label(),
    );
    if let Some(mb) = ixp_obs::peak_rss_mb() {
        rec.gauge("campaign_peak_rss_mb", mb);
    }
    out
}

/// [`stream_vp_links_rec`] without telemetry.
pub fn stream_vp_links<T, S>(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
    store: Option<&CheckpointStore>,
    init: impl Fn() -> S + Sync,
    consume: impl Fn(&mut S, usize, &TslpTarget, LinkSeries, bool) -> T + Sync,
) -> Vec<Result<T, WorkerFailure>>
where
    T: Send,
{
    stream_vp_links_rec(net, vp, targets, cfg, store, &NoopRecorder, init, consume)
}

/// Resolve a `threads` knob: 0 = one worker per available core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// One pool item whose worker panicked instead of returning a result.
///
/// A poisoned link (a substrate bug, a pathological series, an assertion
/// deep in the detector) quarantines as a `WorkerFailure` instead of
/// killing a multi-hour campaign: the panic payload is captured, the
/// worker's per-item state is discarded (it may be mid-mutation), and the
/// worker continues with the remaining items on a fresh state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerFailure {
    /// Index of the failed item in the input slice.
    pub index: usize,
    /// Pool worker that hit the panic. Which worker claims which item is a
    /// scheduling accident, so this field is diagnostic only — telemetry
    /// snapshots strip it from their deterministic form.
    pub worker: usize,
    /// Human-readable key of the failed item (for campaign pools, the
    /// near-far link label), so a quarantine in a multi-hour run can be
    /// traced to its link without re-deriving the target list.
    pub key: String,
    /// The panic payload, rendered as text.
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// Fan `items` out over a work-stealing pool of `threads` workers, each
/// holding private per-worker state built by `init` (a detector scratch, a
/// probe context — anything that should be reused across items but never
/// shared). Results come back in item order and are identical to the
/// sequential run at any thread count, provided `f` is a pure function of
/// `(state, index, item)` where `state` carries no cross-item information —
/// the contract every caller in this workspace upholds.
///
/// A panic in `f` does not abort the run: the item comes back as
/// `Err(`[`WorkerFailure`]`)`, the possibly-poisoned state is dropped, and
/// the worker rebuilds state via `init` before its next item. Because each
/// item is independent, quarantining one item cannot change any other
/// item's result — the any-thread-count determinism guarantee holds for
/// the `Ok` entries.
///
/// `threads = 1` (or a single item) runs inline on the calling thread with
/// one state, no pool.
pub fn pool_try_map_with<T, R, S>(
    threads: usize,
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<Result<R, WorkerFailure>>
where
    T: Sync,
    R: Send,
{
    pool_try_map_rec(threads, items, init, f, &NoopRecorder, "pool", |i, _| i.to_string())
}

/// [`pool_try_map_with`] with telemetry: each worker reports how many items
/// it processed and how long it stayed busy (`rec.worker`), panics bump the
/// `pool_panics` counter, and a [`WorkerFailure`] carries the worker id and
/// the item's `key_of` label. `key_of` is only evaluated on a panic — the
/// happy path never pays for it. With a disabled recorder this is exactly
/// [`pool_try_map_with`]: the timing clock is never read.
pub fn pool_try_map_rec<T, R, S, Rec>(
    threads: usize,
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
    rec: &Rec,
    pool: &str,
    key_of: impl Fn(usize, &T) -> String + Sync,
) -> Vec<Result<R, WorkerFailure>>
where
    T: Sync,
    R: Send,
    Rec: Recorder + Sync,
{
    // `state` is `None` right after a panic: the old state may be mid-
    // mutation and must not leak into later items.
    let run_one = |state: &mut Option<S>, w: usize, i: usize, item: &T| {
        let mut s = state.take().unwrap_or_else(&init);
        match catch_unwind(AssertUnwindSafe(|| f(&mut s, i, item))) {
            Ok(r) => {
                *state = Some(s);
                Ok(r)
            }
            Err(payload) => {
                rec.add("pool_panics", 1);
                Err(WorkerFailure {
                    index: i,
                    worker: w,
                    key: key_of(i, item),
                    message: panic_message(payload),
                })
            }
        }
    };
    // Per-worker wall clock, read only when telemetry is on — the off path
    // must not touch `Instant` at all.
    let clock = |on: bool| if on { Some(Instant::now()) } else { None };
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        let t0 = clock(rec.enabled());
        let mut state = None;
        let out: Vec<_> =
            items.iter().enumerate().map(|(i, t)| run_one(&mut state, 0, i, t)).collect();
        if let Some(t0) = t0 {
            rec.worker(pool, 0, items.len() as u64, t0.elapsed().as_nanos() as u64);
        }
        return out;
    }
    // Work-stealing by atomic claim counter: workers grab the next unclaimed
    // item index and write its result into that index's slot, so output
    // order is item order no matter which worker finishes when.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, WorkerFailure>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (run_one, slots, next, rec, clock) = (&run_one, &slots, &next, &rec, &clock);
            scope.spawn(move || {
                let t0 = clock(rec.enabled());
                let mut state = None;
                let mut done = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let r = run_one(&mut state, w, i, item);
                    *slots[i].lock().expect("slot lock poisoned") = Some(r);
                    done += 1;
                }
                if let Some(t0) = t0 {
                    rec.worker(pool, w, done, t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock poisoned").expect("worker filled every slot"))
        .collect()
}

/// [`pool_try_map_with`] for callers that treat a worker panic as fatal:
/// the first failure (in item order) is re-raised on the calling thread.
pub fn pool_map_with<T, R, S>(
    threads: usize,
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    pool_map_rec(threads, items, init, f, &NoopRecorder, "pool", |i, _| i.to_string())
}

/// [`pool_try_map_rec`] with fatal panics: the first failure (in item
/// order) is re-raised on the calling thread, carrying the worker id and
/// item key alongside the original payload.
pub fn pool_map_rec<T, R, S, Rec>(
    threads: usize,
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
    rec: &Rec,
    pool: &str,
    key_of: impl Fn(usize, &T) -> String + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    Rec: Recorder + Sync,
{
    pool_try_map_rec(threads, items, init, f, rec, pool, key_of)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!(
                "worker panicked on item {} (worker {}, key {}): {}",
                e.index, e.worker, e.key, e.message
            ),
        })
        .collect()
}

/// Measure a whole target list, fanning targets out over `cfg.threads`
/// workers. Results come back in target order and are bit-identical to the
/// sequential run at any thread count: each target owns a private
/// [`ProbeCtx`] and the substrate is only read.
pub fn measure_vp_links(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
) -> Vec<(LinkSeries, bool)> {
    pool_map_with(cfg.threads, targets, ProbeCtx::default, |ctx, _, t| {
        measure_link_in(net, ctx, vp, t, cfg)
    })
}

/// [`measure_vp_links`] with telemetry: every worker accumulates per-link
/// probe ledgers, RTT histograms, and campaign counters into a private
/// sheet, folded into `rec` once per worker ([`DrainSheet`]). Counters,
/// ledgers, and histograms are identical at every thread count; only the
/// per-worker rows (`rec.worker`) depend on scheduling.
pub fn measure_vp_links_rec<R: Recorder + Sync>(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
    rec: &R,
) -> Vec<(LinkSeries, bool)> {
    if !rec.enabled() {
        return measure_vp_links(net, vp, targets, cfg);
    }
    pool_map_rec(
        cfg.threads,
        targets,
        || (ProbeCtx::default(), DrainSheet::new(rec)),
        |(ctx, ds), _, t| measure_link_rec_in(net, ctx, vp, t, cfg, &ds.local),
        rec,
        "campaign",
        |_, t| link_key(t).label(),
    )
}

/// Measure a whole target list; returns per-target series plus the count of
/// links the screening pass short-circuited.
pub fn measure_vp(
    net: &Network,
    vp: NodeId,
    targets: &[TslpTarget],
    cfg: &CampaignConfig,
) -> (Vec<LinkSeries>, usize) {
    let results = measure_vp_links(net, vp, targets, cfg);
    let screened = results.iter().filter(|(_, sc)| *sc).count();
    (results.into_iter().map(|(s, _)| s).collect(), screened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{assess_link, AssessConfig};
    use ixp_prober::testutil::{congested_line, line_topology};
    use ixp_simnet::prelude::Ipv4;

    fn target() -> TslpTarget {
        TslpTarget {
            dst: Ipv4::new(10, 0, 2, 2),
            near_ttl: 1,
            far_ttl: 2,
            near_addr: Ipv4::new(10, 0, 0, 1),
            far_addr: Ipv4::new(10, 0, 1, 2),
        }
    }

    #[test]
    fn healthy_link_is_screened_out() {
        let (net, vp, _) = line_topology(50);
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 8));
        let (series, screened) = measure_link(&net, vp, &target(), &cfg);
        assert!(screened, "clean line should not need the full campaign");
        assert_eq!(series.cfg.interval, SimDuration::from_hours(1));
        assert!(!assess_link(&series, &AssessConfig::default()).flagged);
    }

    /// Overload only between 10:00 and 16:00 — a diurnal congestion pulse.
    struct MiddayPulse;
    impl ixp_simnet::link::OfferedLoad for MiddayPulse {
        fn bps(&self, t: SimTime) -> f64 {
            if (10.0..16.0).contains(&t.hour_of_day()) {
                1.3e8
            } else {
                2e7
            }
        }
        fn peak_bps(&self) -> f64 {
            1.3e8
        }
    }

    #[test]
    fn congested_link_gets_full_fidelity() {
        let (mut net, vp, _) = congested_line(51, 1.3);
        // Replace the constant overload with a midday pulse: constant
        // saturation produces no level *shifts* (nothing for TSLP to see),
        // a diurnal pulse does.
        net.link_mut(ixp_simnet::prelude::LinkId(1))
            .set_load(ixp_simnet::prelude::Dir::AtoB, std::sync::Arc::new(MiddayPulse));
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 15));
        let (series, screened) = measure_link(&net, vp, &target(), &cfg);
        assert!(!screened, "spread {}", far_spread_ms(&series));
        assert_eq!(series.cfg.interval, SimDuration::from_mins(5));
        let a = assess_link(&series, &AssessConfig::default());
        assert!(a.flagged);
        assert!(a.diurnal);
        assert!(a.congested);
    }

    #[test]
    fn exact_mode_never_screens() {
        let (net, vp, _) = line_topology(52);
        let cfg = CampaignConfig::exact(SimTime::ZERO, SimTime::from_date(2016, 1, 3));
        let (series, screened) = measure_link(&net, vp, &target(), &cfg);
        assert!(!screened);
        assert_eq!(series.len(), 2 * 288);
    }

    #[test]
    fn pool_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1usize, 2, 3, 8] {
            // Per-worker state: a reused buffer, as a stand-in for a scratch.
            let got = pool_map_with(
                threads,
                &items,
                Vec::<u64>::new,
                |buf, i, &x| {
                    buf.push(x);
                    assert_eq!(items[i], x);
                    x * x
                },
            );
            assert_eq!(got, want, "threads={threads}");
        }
        // Empty input is fine.
        assert!(pool_map_with(4, &[] as &[u64], || (), |_, _, &x| x).is_empty());
    }

    #[test]
    fn measure_vp_counts_screening() {
        let (net, vp, _) = line_topology(53);
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 5));
        let targets = vec![target(); 3];
        let (series, screened) = measure_vp(&net, vp, &targets, &cfg);
        assert_eq!(series.len(), 3);
        assert_eq!(screened, 3);
    }

    #[test]
    fn poisoned_item_quarantines_not_aborts() {
        let items: Vec<u64> = (0..40).collect();
        for threads in [1usize, 3] {
            let got = pool_try_map_with(threads, &items, || 0u64, |acc, _, &x| {
                assert!(x % 13 != 7, "poisoned item {x}");
                *acc += 1; // per-worker state keeps working after a panic
                x * 2
            });
            assert_eq!(got.len(), items.len());
            for (i, r) in got.iter().enumerate() {
                if i % 13 == 7 {
                    let e = r.as_ref().expect_err("poisoned item must fail");
                    assert_eq!(e.index, i);
                    assert!(e.message.contains("poisoned item"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), items[i] * 2, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn worker_failures_carry_worker_and_key() {
        let items: Vec<u64> = (0..12).collect();
        for threads in [1usize, 3] {
            let got = pool_try_map_rec(
                threads,
                &items,
                || (),
                |_, _, &x| {
                    assert!(x != 5, "boom");
                    x
                },
                &NoopRecorder,
                "pool",
                |_, x| format!("item-{x}"),
            );
            let e = got[5].as_ref().expect_err("item 5 must fail");
            assert_eq!(e.index, 5);
            assert!(e.worker < threads, "worker {} of {}", e.worker, threads);
            assert_eq!(e.key, "item-5");
        }
    }

    #[test]
    fn pool_telemetry_counts_workers_and_panics() {
        use ixp_obs::MetricsRegistry;
        let items: Vec<u64> = (0..30).collect();
        let reg = MetricsRegistry::new();
        let got = pool_try_map_rec(
            3,
            &items,
            || (),
            |_, _, &x| {
                assert!(x != 11 && x != 22, "boom");
                x
            },
            &reg,
            "sq",
            |i, _| i.to_string(),
        );
        assert_eq!(got.iter().filter(|r| r.is_err()).count(), 2);
        let sheet = reg.snapshot();
        assert_eq!(sheet.counter("pool_panics"), 2);
        let items_done: u64 = sheet
            .workers
            .iter()
            .filter(|(k, _)| k.starts_with("sq/"))
            .map(|(_, w)| w.items)
            .sum();
        assert_eq!(items_done, 30, "every item attributed to some worker");
    }

    #[test]
    fn campaign_telemetry_is_thread_count_invariant() {
        use ixp_obs::MetricsRegistry;
        let (net, vp, _) = line_topology(55);
        let cfg1 = CampaignConfig {
            threads: 1,
            ..CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 5))
        };
        let cfg3 = CampaignConfig { threads: 3, ..cfg1 };
        let targets = vec![target(); 4];

        let run = |cfg: &CampaignConfig| {
            let reg = MetricsRegistry::new();
            let out = measure_vp_links_rec(&net, vp, &targets, cfg, &reg);
            (out, reg.snapshot())
        };
        let (out1, s1) = run(&cfg1);
        let (out3, s3) = run(&cfg3);
        // NaN-proof bitwise comparison of the measured series.
        let bits = |out: &[(LinkSeries, bool)]| {
            out.iter()
                .map(|(s, sc)| {
                    let far: Vec<u64> = s.far_ms.iter().map(|v| v.to_bits()).collect();
                    let near: Vec<u64> = s.near_ms.iter().map(|v| v.to_bits()).collect();
                    (near, far, *sc)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&out1), bits(&out3), "series identical at any thread count");
        // Everything except the scheduling-dependent worker rows must agree.
        assert_eq!(s1.counters, s3.counters);
        assert_eq!(s1.ledgers, s3.ledgers);
        assert_eq!(s1.histograms, s3.histograms);
        assert!(s1.counter("probes_sent") > 0);
        assert_eq!(s1.counter("links_screened"), 4);
        // And the recorded run returns exactly what the plain run returns.
        let plain = measure_vp_links(&net, vp, &targets, &cfg1);
        assert_eq!(bits(&out1), bits(&plain), "telemetry only observes");
    }

    #[test]
    fn streaming_matches_two_pass_at_any_thread_count() {
        let (net, vp, _) = line_topology(56);
        let targets = vec![target(); 5];
        let base = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 5));
        let bits = |s: &LinkSeries| {
            s.far_ms.iter().chain(&s.near_ms).map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let two_pass: Vec<_> = measure_vp_links(&net, vp, &targets, &base)
            .iter()
            .map(|(s, sc)| (bits(s), *sc))
            .collect();
        for threads in [1usize, 3] {
            let cfg = CampaignConfig { threads, ..base };
            // Consume inside the pool pass: the series is dropped right here.
            let streamed = stream_vp_links(&net, vp, &targets, &cfg, None, || (), |_, _, _, s, sc| {
                (bits(&s), sc)
            });
            let streamed: Vec<_> = streamed.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(streamed, two_pass, "threads={threads}");
        }
    }

    #[test]
    fn streaming_quarantine_reobtains_series_from_checkpoint() {
        let dir = std::env::temp_dir()
            .join(format!("tslp-stream-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (net, vp, _) = line_topology(57);
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 5));
        let targets = vec![target(); 3];
        let store = CheckpointStore::new(&dir, campaign_fingerprint(&cfg)).unwrap();
        let out = stream_vp_links(&net, vp, &targets, &cfg, Some(&store), || (), |_, i, _, s, _| {
            assert!(i != 1, "poisoned consumer");
            s.len()
        });
        assert!(out[0].is_ok() && out[2].is_ok());
        let failure = out[1].as_ref().expect_err("item 1 quarantined");
        assert!(failure.message.contains("poisoned consumer"));
        // The dropped series replays from the shard the worker wrote before
        // its consumer panicked — same length as its successful twin.
        let (replayed, _) = measure_link_checkpointed(&net, vp, &targets[1], &cfg, &store);
        assert_eq!(replayed.len(), *out[0].as_ref().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_records_memory_gauges() {
        use ixp_obs::MetricsRegistry;
        let (net, vp, _) = line_topology(58);
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 5));
        let targets = vec![target(); 4];
        let reg = MetricsRegistry::new();
        let out = stream_vp_links_rec(&net, vp, &targets, &cfg, None, &reg, || (), |_, _, _, s, _| s.len());
        assert!(out.iter().all(|r| r.is_ok()));
        let sheet = reg.snapshot();
        let active = sheet.gauges.get("campaign_active_windows").copied().unwrap_or(0.0);
        assert!(active >= 1.0, "active-window high-water mark {active}");
        if ixp_obs::peak_rss_mb().is_some() {
            assert!(sheet.gauges["campaign_peak_rss_mb"] > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked on item 2")]
    fn pool_map_reraises_first_failure() {
        let items: Vec<u64> = (0..5).collect();
        pool_map_with(1, &items, || (), |_, _, &x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn checkpointed_measurement_resumes_bit_identical() {
        let dir = std::env::temp_dir()
            .join(format!("tslp-campaign-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (net, vp, _) = line_topology(54);
        let cfg = CampaignConfig::paper(SimTime::ZERO, SimTime::from_date(2016, 1, 8));
        let targets = vec![target(); 2];
        let plain = measure_vp_links(&net, vp, &targets, &cfg);

        let store = CheckpointStore::new(&dir, campaign_fingerprint(&cfg)).unwrap();
        // First pass measures and persists; both targets share one key (the
        // same walk), so one checkpoint covers them.
        let first = measure_vp_links_checkpointed(&net, vp, &targets, &cfg, Some(&store));
        assert!(!store.is_empty());
        // Second pass replays from disk: must match the uncheckpointed run
        // bit for bit.
        let resumed = measure_vp_links_checkpointed(&net, vp, &targets, &cfg, Some(&store));
        for ((p, f), r) in plain.iter().zip(&first).zip(&resumed) {
            for out in [f, r] {
                assert_eq!(out.1, p.1);
                assert_eq!(
                    out.0.far_ms.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    p.0.far_ms.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                );
                assert_eq!(
                    out.0.near_ms.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    p.0.near_ms.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                );
            }
        }
        // A changed config gets a different fingerprint and ignores the old
        // checkpoints.
        let cfg2 = CampaignConfig::exact(SimTime::ZERO, SimTime::from_date(2016, 1, 8));
        assert_ne!(campaign_fingerprint(&cfg), campaign_fingerprint(&cfg2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
