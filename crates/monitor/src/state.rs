//! Per-link streaming state: online detection, causal path-change masking,
//! and an incremental measurement-health ladder.
//!
//! The contract that everything else leans on: feeding a link's raw far
//! series through [`LinkState::push`] one sample at a time produces exactly
//! the alarm rounds that [`ixp_chgpt::online_events`] reports over the full
//! series. Non-finite samples reach the detector (which counts them as gaps
//! and leaves its state untouched), so round indices line up with series
//! positions with no skip bookkeeping.
//!
//! Masking follows the batch rule from `assess_link_masked`, made causal: a
//! path change at round `c` taints upshifts in `[c, c + slack]`. The batch
//! assessor can also mask an upshift *before* the change (it sees the whole
//! series); a resident monitor cannot know the future, so the backward half
//! of the window is deliberately absent — the equivalence suite pins the
//! causal rule on both the streaming and batch sides.
//!
//! Health mirrors [`tslp_core::health::classify_link`]'s evidence precedence
//! (Silent > AddrUnstable > PathChange > RateLimited > Gappy > Clean) over a
//! tumbling window — the same shape as the batch classifier's per-window
//! labels — using O(1) counters instead of a retained series. It is the
//! documented streaming approximation: loss runs count toward gap evidence
//! once they close (or while still open, at their current length), whereas
//! the batch classifier sees every run's final extent.

use crate::service::MonitorConfig;
use ixp_chgpt::{OnlineDetector, OnlineSnapshot, OnlineVerdict};
use tslp_core::LinkHealth;

/// One ingested measurement round for one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorSample {
    /// Far-side RTT in milliseconds; non-finite = the round went unanswered.
    pub far_ms: f64,
    /// TSLP path fingerprint for the round (0 = unknown, never a change).
    pub path_fp: u64,
    /// Did the far answer come from the expected address? (Ignored for
    /// unanswered rounds.)
    pub far_addr_ok: bool,
}

impl MonitorSample {
    /// An unanswered round.
    pub fn lost() -> MonitorSample {
        MonitorSample { far_ms: f64::NAN, path_fp: 0, far_addr_ok: true }
    }

    /// A clean answered round.
    pub fn answered(far_ms: f64, path_fp: u64) -> MonitorSample {
        MonitorSample { far_ms, path_fp, far_addr_ok: true }
    }
}

/// What one sample did to a link's monitor state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkUpdate {
    /// The round index this sample landed on (0-based, counts every sample).
    pub round: u64,
    /// The detector's verdict for the sample.
    pub verdict: OnlineVerdict,
    /// True when the verdict is an upshift alarm attributed to a recent
    /// path change rather than congestion.
    pub masked: bool,
    /// True when this sample closed a health window and the committed
    /// health class changed. Computed at the rollover itself, so tracing
    /// callers never recompute (or even reread) the label on the hot path.
    pub health_changed: bool,
    /// The health class committed before this sample (only meaningful when
    /// [`LinkUpdate::health_changed`] is set; equals the current class
    /// otherwise).
    pub health_before: LinkHealth,
    /// True when this update is worth tracing: an upshift or downshift
    /// alarm, or a committed health change. One precomputed byte so the
    /// traced ingest path tests a single flag per delivery.
    pub noteworthy: bool,
}

/// One congestion event from the batch reference view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Upshift sample index.
    pub up: usize,
    /// Downshift sample index (series length when the event never closed).
    pub down: usize,
    /// True when the upshift was masked as a path-change artifact.
    pub masked: bool,
}

/// Full streaming state for one monitored link. ~200 bytes, O(1) per sample.
#[derive(Clone, Debug)]
pub struct LinkState {
    det: OnlineDetector,
    /// Last nonzero path fingerprint seen (0 = none yet).
    last_fp: u64,
    /// Round of the most recent fingerprint change (`u64::MAX` = never).
    last_change_round: u64,
    /// Fingerprint that was replaced by the most recent change (0 = no
    /// change yet) — the "before" half of the path-change evidence.
    fp_before: u64,
    /// Round of the most recent upshift alarm (`u64::MAX` = never).
    last_alarm_round: u64,
    /// Rounds between the last path change and the last alarm
    /// (`u64::MAX` = no change was on record when the alarm fired).
    last_alarm_gap: u64,
    /// Was the last alarm masked as a path-change artifact?
    last_alarm_masked: bool,
    /// Samples pushed (answered or not).
    rounds: u64,
    /// Total fingerprint changes.
    path_changes: u64,
    /// Upshift alarms (masked ones included).
    alarms: u64,
    /// Upshift alarms attributed to path changes.
    masked_alarms: u64,
    // Tumbling health window counters.
    w_rounds: u64,
    w_answered: u64,
    w_addr_bad: u64,
    /// Rounds inside closed loss runs that qualified as gaps.
    w_gap_rounds: u64,
    w_path_changes: u64,
    /// Length of the loss run currently open (may span window boundaries).
    cur_loss_run: u64,
    /// Label of the last completed window (`Clean` until one completes).
    prev_health: LinkHealth,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState::new()
    }
}

impl LinkState {
    /// Fresh state. The detector configuration comes in per-push via
    /// [`MonitorConfig`]? No — the detector owns its config from birth:
    /// build through [`LinkState::with_config`] in real use.
    pub fn new() -> LinkState {
        LinkState::with_config(&MonitorConfig::default())
    }

    /// Fresh state for a service configuration.
    pub fn with_config(cfg: &MonitorConfig) -> LinkState {
        LinkState {
            det: OnlineDetector::new(cfg.online),
            last_fp: 0,
            last_change_round: u64::MAX,
            fp_before: 0,
            last_alarm_round: u64::MAX,
            last_alarm_gap: u64::MAX,
            last_alarm_masked: false,
            rounds: 0,
            path_changes: 0,
            alarms: 0,
            masked_alarms: 0,
            w_rounds: 0,
            w_answered: 0,
            w_addr_bad: 0,
            w_gap_rounds: 0,
            w_path_changes: 0,
            cur_loss_run: 0,
            prev_health: LinkHealth::Clean,
        }
    }

    /// Rounds ingested so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total upshift alarms (masked included).
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Upshift alarms masked as path-change artifacts.
    pub fn masked_alarms(&self) -> u64 {
        self.masked_alarms
    }

    /// Total path-fingerprint changes observed.
    pub fn path_changes(&self) -> u64 {
        self.path_changes
    }

    /// The underlying detector (read access for verdict assembly).
    pub fn detector(&self) -> &OnlineDetector {
        &self.det
    }

    /// Provenance for the link's current verdict: where the last shift
    /// happened, what the path looked like before and after the most recent
    /// fingerprint change, and whether the path-change mask was applied,
    /// rejected, or never in play at the last alarm.
    pub fn verdict_evidence(&self) -> crate::index::VerdictEvidence {
        use crate::index::MaskOutcome;
        crate::index::VerdictEvidence {
            change_round: self.last_alarm_round,
            level_before_ms: self.det.snapshot().level_before,
            fp_before: self.fp_before,
            fp_after: self.last_fp,
            path_change_round: self.last_change_round,
            mask: if self.last_alarm_round == u64::MAX || self.last_alarm_gap == u64::MAX {
                MaskOutcome::NotConsidered
            } else if self.last_alarm_masked {
                MaskOutcome::Applied { rounds_since_change: self.last_alarm_gap }
            } else {
                MaskOutcome::Rejected { rounds_since_change: self.last_alarm_gap }
            },
        }
    }

    /// Ingest one round. `cfg` must be the same configuration every call
    /// (the service guarantees this; mixing configs is a logic error).
    #[inline(always)]
    pub fn push(&mut self, s: &MonitorSample, cfg: &MonitorConfig) -> LinkUpdate {
        let round = self.rounds;
        self.rounds += 1;

        // Path-change detection first — mirrors
        // `LinkSeries::path_change_rounds`: a change happens at the round
        // whose nonzero fingerprint differs from the last nonzero one;
        // fingerprint 0 (unanswered / rate-limited rounds) never changes
        // anything. Detected before the detector sees the sample so a shift
        // landing on the change round itself is maskable.
        if s.path_fp != 0 {
            if self.last_fp != 0 && s.path_fp != self.last_fp {
                self.path_changes += 1;
                self.w_path_changes += 1;
                self.last_change_round = round;
                self.fp_before = self.last_fp;
            }
            self.last_fp = s.path_fp;
        }

        // Window bookkeeping.
        let answered = s.far_ms.is_finite();
        if answered {
            self.w_answered += 1;
            if !s.far_addr_ok {
                self.w_addr_bad += 1;
            }
            if self.cur_loss_run >= cfg.min_gap_rounds {
                self.w_gap_rounds += self.cur_loss_run.min(self.w_rounds);
            }
            self.cur_loss_run = 0;
        } else {
            self.cur_loss_run += 1;
        }

        let verdict = self.det.push(s.far_ms);
        let mut masked = false;
        if verdict == OnlineVerdict::UpshiftAlarm {
            self.alarms += 1;
            self.last_alarm_round = round;
            self.last_alarm_gap = if self.last_change_round == u64::MAX {
                u64::MAX
            } else {
                round - self.last_change_round
            };
            // Causal masking: the change at `c` taints `[c, c + slack]`.
            if self.last_change_round != u64::MAX
                && round - self.last_change_round <= cfg.mask_slack
            {
                masked = true;
                self.masked_alarms += 1;
            }
            self.last_alarm_masked = masked;
        }

        self.w_rounds += 1;
        let health_before = self.prev_health;
        if self.w_rounds >= cfg.window_rounds {
            self.prev_health = self.window_label(cfg);
            self.w_rounds = 0;
            self.w_answered = 0;
            self.w_addr_bad = 0;
            self.w_gap_rounds = 0;
            self.w_path_changes = 0;
            // cur_loss_run deliberately survives: an outage spanning the
            // boundary keeps accumulating toward Silent evidence.
        }

        let health_changed = self.prev_health != health_before;
        LinkUpdate {
            round,
            verdict,
            masked,
            health_changed,
            health_before,
            noteworthy: matches!(
                verdict,
                OnlineVerdict::UpshiftAlarm | OnlineVerdict::DownshiftAlarm
            ) | health_changed,
        }
    }

    /// The health label over the current (in-progress) window, falling back
    /// to the last completed window's label while the new window is still
    /// too young to say anything (fewer than `min_gap_rounds` rounds).
    pub fn health(&self, cfg: &MonitorConfig) -> LinkHealth {
        if self.w_rounds < cfg.min_gap_rounds {
            return self.prev_health;
        }
        self.window_label(cfg)
    }

    /// The health class committed at the last window boundary — an O(1)
    /// field read, unlike [`LinkState::health`], which recomputes the live
    /// label. The tracing path compares this across a push to report
    /// [`ixp_obs::TraceKind::HealthChanged`] without pricing a label
    /// computation into every sample.
    pub(crate) fn committed_health(&self) -> LinkHealth {
        self.prev_health
    }

    fn window_label(&self, cfg: &MonitorConfig) -> LinkHealth {
        let rounds = self.w_rounds;
        if rounds == 0 {
            return self.prev_health;
        }
        // An open loss run contributes at its current length once it
        // qualifies, clipped to this window.
        let open_gap = if self.cur_loss_run >= cfg.min_gap_rounds {
            self.cur_loss_run.min(rounds)
        } else {
            0
        };
        let gap_rounds = (self.w_gap_rounds + open_gap).min(rounds);
        let validity = self.w_answered as f64 / rounds as f64;
        let trailing = self.cur_loss_run as f64 / cfg.window_rounds as f64;
        if validity < cfg.silent_validity || trailing >= cfg.silent_tail_fraction {
            return LinkHealth::Silent;
        }
        let consistency = if self.w_answered == 0 {
            1.0
        } else {
            (self.w_answered - self.w_addr_bad) as f64 / self.w_answered as f64
        };
        if consistency < cfg.min_addr_consistency {
            return LinkHealth::AddrUnstable;
        }
        if self.w_path_changes > 0 {
            return LinkHealth::PathChange;
        }
        let lost = rounds - self.w_answered;
        let scattered = lost.saturating_sub(gap_rounds);
        let outside = rounds - gap_rounds;
        if outside > 0 && scattered as f64 / outside as f64 > cfg.max_scattered_loss {
            return LinkHealth::RateLimited;
        }
        if gap_rounds > 0 {
            return LinkHealth::Gappy;
        }
        LinkHealth::Clean
    }

    /// Fixed-layout encode for checkpointing: 27 u64 little-endian words.
    /// The detector config is not serialized — it is rebuilt from the
    /// service config, which the checkpoint fingerprint binds.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        let d = self.det.snapshot();
        let words: [u64; 27] = [
            d.baseline.to_bits(),
            d.warmup_seen as u64,
            d.warmup_sum.to_bits(),
            d.s_up.to_bits(),
            d.s_down.to_bits(),
            d.elevated as u64,
            d.level_before.to_bits(),
            d.elevated_sum.to_bits(),
            d.elevated_n as u64,
            d.gaps,
            self.last_fp,
            self.last_change_round,
            self.rounds,
            self.path_changes,
            self.alarms,
            self.masked_alarms,
            self.w_rounds,
            self.w_answered,
            self.w_addr_bad,
            self.w_gap_rounds,
            self.w_path_changes,
            self.cur_loss_run,
            health_token(self.prev_health),
            self.fp_before,
            self.last_alarm_round,
            self.last_alarm_gap,
            u64::from(self.last_alarm_masked),
        ];
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Number of encoded bytes per link.
    pub(crate) const ENCODED_LEN: usize = 27 * 8;

    /// Decode a state previously written by [`LinkState::encode_into`].
    pub(crate) fn decode(bytes: &[u8], cfg: &MonitorConfig) -> Option<LinkState> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let mut words = [0u64; 27];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().ok()?);
        }
        let snap = OnlineSnapshot {
            cfg: cfg.online,
            baseline: f64::from_bits(words[0]),
            warmup_seen: words[1] as usize,
            warmup_sum: f64::from_bits(words[2]),
            s_up: f64::from_bits(words[3]),
            s_down: f64::from_bits(words[4]),
            elevated: words[5] != 0,
            level_before: f64::from_bits(words[6]),
            elevated_sum: f64::from_bits(words[7]),
            elevated_n: words[8] as usize,
            gaps: words[9],
        };
        if words[26] > 1 {
            return None;
        }
        Some(LinkState {
            det: OnlineDetector::restore(&snap),
            last_fp: words[10],
            last_change_round: words[11],
            fp_before: words[23],
            last_alarm_round: words[24],
            last_alarm_gap: words[25],
            last_alarm_masked: words[26] != 0,
            rounds: words[12],
            path_changes: words[13],
            alarms: words[14],
            masked_alarms: words[15],
            w_rounds: words[16],
            w_answered: words[17],
            w_addr_bad: words[18],
            w_gap_rounds: words[19],
            w_path_changes: words[20],
            cur_loss_run: words[21],
            prev_health: health_from_token(words[22])?,
        })
    }
}

/// Reorder-buffer capacity: the hard upper bound on
/// [`crate::MonitorConfig::reorder_window`]. Eight pending rounds is 40
/// minutes of telemetry at the paper's 5-minute cadence — far beyond any
/// plausible collector skew; larger windows would only delay loss verdicts.
pub const REORDER_CAP: usize = 8;

/// What one [`SeqGate::admit`] call did, for batch-level accounting. The
/// gate also keeps running per-link totals; this is the per-call delta the
/// ingest worker folds into its shard report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmitDelta {
    /// Samples released into the detector by this call (the admitted
    /// sample itself and any buffered samples it unblocked).
    pub delivered: u32,
    /// Duplicate sequence numbers detected (recently delivered or already
    /// buffered).
    pub duplicates: u32,
    /// Sequence numbers older than the duplicate horizon: ancient replays.
    pub stale: u32,
    /// Samples delivered out of arrival order via the reorder buffer.
    pub reordered: u32,
    /// Sequence numbers given up on: never arrived before the window slid
    /// past them. Counted, never fabricated.
    pub dropped: u64,
}

/// Per-link admission gate: sequence-number tracking with a small reorder
/// buffer, so disordered telemetry is healed when possible and **counted**
/// when not — never silently pushed into the CUSUM state out of order.
///
/// The contract: [`SeqGate::admit`] releases samples to the detector in
/// strictly increasing sequence order. A sample whose sequence number is
/// within `window` ahead of the next expected one is parked and released
/// once the gap fills; one further ahead slides the window (the skipped
/// sequence numbers are counted as dropped); one at or behind the last
/// delivery is counted as duplicate (within the window) or stale (older).
/// All decisions are pure functions of the per-link arrival order, so the
/// outcome is bit-identical at any ingest thread count.
#[derive(Clone, Debug)]
#[repr(C)] // next_seq and live share the first cache line — see below.
pub struct SeqGate {
    /// Next sequence number expected for delivery.
    next_seq: u64,
    /// Occupied `buf` slots. Derived (recomputed on decode, never
    /// serialized). Declared next to `next_seq` under `repr(C)` on
    /// purpose: the in-order hot path reads exactly these two words and
    /// nothing else, so a healthy producer costs one cache line per
    /// gate — the resilience bench holds that fast path under 3% over
    /// raw ingest.
    live: u64,
    duplicates: u64,
    stale: u64,
    reordered: u64,
    dropped: u64,
    /// Parked out-of-order samples, each holding sequence numbers in
    /// `(next_seq, next_seq + window]`. At most `window ≤ REORDER_CAP`
    /// distinct values fit, so a vacant slot always exists.
    buf: [Option<(u64, MonitorSample)>; REORDER_CAP],
}

impl Default for SeqGate {
    fn default() -> Self {
        SeqGate::new()
    }
}

impl SeqGate {
    /// A fresh gate expecting sequence number 0.
    pub fn new() -> SeqGate {
        SeqGate {
            next_seq: 0,
            duplicates: 0,
            stale: 0,
            reordered: 0,
            dropped: 0,
            buf: [None; REORDER_CAP],
            live: 0,
        }
    }

    /// Next sequence number the gate will deliver.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total duplicate sequence numbers seen.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Total stale (ancient replay) sequence numbers seen.
    pub fn stale(&self) -> u64 {
        self.stale
    }

    /// Total samples delivered out of arrival order via the buffer.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Total sequence numbers the window slid past without a sample.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Samples currently parked in the reorder buffer.
    pub fn buffered(&self) -> usize {
        self.live as usize
    }

    /// True when `seq` would take the clean in-order fast path of
    /// [`SeqGate::admit`]: the expected sequence number with nothing
    /// parked, so the admission delta is a known constant (one delivery,
    /// no anomalies). The traced ingest loop uses this to keep clean
    /// arrivals — the steady state — free of per-call delta inspection.
    #[inline]
    pub fn in_order(&self, seq: u64) -> bool {
        seq == self.next_seq && self.live == 0 && seq != u64::MAX
    }

    /// Admit one `(seq, sample)` arrival. In-order and healed samples are
    /// handed to `deliver` in strictly increasing sequence order; the rest
    /// are counted. `window` is clamped to [`REORDER_CAP`]; sequence
    /// number `u64::MAX` is reserved (rejected as stale) so the internal
    /// arithmetic cannot overflow.
    #[inline]
    pub fn admit(
        &mut self,
        seq: u64,
        s: MonitorSample,
        window: u64,
        deliver: &mut impl FnMut(MonitorSample),
    ) -> AdmitDelta {
        // Hot path: the expected sequence number with nothing parked —
        // the steady state of a healthy producer. Two words read, no
        // buffer traffic, and small enough to inline into the shard
        // loop (the full gate machinery stays out of line in
        // `admit_slow`).
        if self.in_order(seq) {
            deliver(s);
            self.next_seq += 1;
            return AdmitDelta { delivered: 1, ..AdmitDelta::default() };
        }
        self.admit_slow(seq, s, window, deliver)
    }

    fn admit_slow(
        &mut self,
        seq: u64,
        s: MonitorSample,
        window: u64,
        deliver: &mut impl FnMut(MonitorSample),
    ) -> AdmitDelta {
        let mut delta = AdmitDelta::default();
        let w = window.min(REORDER_CAP as u64);
        if seq == u64::MAX {
            self.stale += 1;
            delta.stale += 1;
            return delta;
        }
        if seq < self.next_seq {
            // Behind the gate: recently delivered (duplicate) or ancient
            // (stale). The duplicate horizon is at least one so an exact
            // re-send of the last delivery always reads as a duplicate.
            if self.next_seq - seq <= w.max(1) {
                self.duplicates += 1;
                delta.duplicates += 1;
            } else {
                self.stale += 1;
                delta.stale += 1;
            }
            return delta;
        }
        if seq > self.next_seq.saturating_add(w) {
            // Too far ahead: the window slides. Whatever is due before the
            // new base is released (reordered) or given up on (dropped).
            self.advance_to(seq - w, &mut delta, deliver);
        }
        if seq == self.next_seq {
            deliver(s);
            delta.delivered += 1;
            self.next_seq += 1;
        } else {
            // (next_seq, next_seq + w]: park it, dedup against the buffer.
            if self.buf.iter().flatten().any(|&(q, _)| q == seq) {
                self.duplicates += 1;
                delta.duplicates += 1;
            } else {
                let slot = self.buf.iter_mut().find(|s| s.is_none()).expect(
                    "reorder buffer full despite window bound (gate invariant broken)",
                );
                *slot = Some((seq, s));
                self.live += 1;
            }
        }
        self.drain(&mut delta, deliver);
        delta
    }

    /// Slide the gate forward to `new_next`, releasing due buffered samples
    /// in order and counting the holes as dropped. Work is bounded by the
    /// buffer capacity, not the distance — a huge sequence jump (collector
    /// restart) costs O(REORDER_CAP²), and the skipped range is *counted*,
    /// never materialized.
    fn advance_to(
        &mut self,
        new_next: u64,
        delta: &mut AdmitDelta,
        deliver: &mut impl FnMut(MonitorSample),
    ) {
        while self.next_seq < new_next {
            let due = self
                .buf
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|(q, _)| (q, i)))
                .filter(|&(q, _)| q < new_next)
                .min();
            match due {
                Some((q, i)) => {
                    let missing = q - self.next_seq;
                    self.dropped += missing;
                    delta.dropped += missing;
                    let (_, sample) = self.buf[i].take().expect("slot just observed occupied");
                    self.live -= 1;
                    deliver(sample);
                    delta.delivered += 1;
                    self.reordered += 1;
                    delta.reordered += 1;
                    self.next_seq = q + 1;
                }
                None => {
                    let missing = new_next - self.next_seq;
                    self.dropped += missing;
                    delta.dropped += missing;
                    self.next_seq = new_next;
                }
            }
        }
    }

    /// Release consecutively buffered samples now that the gap has filled.
    fn drain(&mut self, delta: &mut AdmitDelta, deliver: &mut impl FnMut(MonitorSample)) {
        while self.live > 0 {
            let Some(i) = self
                .buf
                .iter()
                .position(|s| s.is_some_and(|(q, _)| q == self.next_seq))
            else {
                return;
            };
            let (_, sample) = self.buf[i].take().expect("slot just observed occupied");
            self.live -= 1;
            deliver(sample);
            delta.delivered += 1;
            self.reordered += 1;
            delta.reordered += 1;
            self.next_seq += 1;
        }
    }

    /// Fixed-layout encode for checkpointing: 37 little-endian u64 words
    /// (5 counters + `REORDER_CAP` slots of 4 words each).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        for w in [self.next_seq, self.duplicates, self.stale, self.reordered, self.dropped] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for slot in &self.buf {
            let (seq, far, fp, flags) = match slot {
                Some((q, s)) => {
                    (*q, s.far_ms.to_bits(), s.path_fp, 1u64 | (u64::from(s.far_addr_ok) << 1))
                }
                None => (0, 0, 0, 0),
            };
            for w in [seq, far, fp, flags] {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    /// Number of encoded bytes per gate.
    pub(crate) const ENCODED_LEN: usize = (5 + REORDER_CAP * 4) * 8;

    /// Decode a gate previously written by [`SeqGate::encode_into`].
    pub(crate) fn decode(bytes: &[u8]) -> Option<SeqGate> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let word = |i: usize| -> Option<u64> {
            bytes.get(i * 8..i * 8 + 8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        let mut gate = SeqGate {
            next_seq: word(0)?,
            duplicates: word(1)?,
            stale: word(2)?,
            reordered: word(3)?,
            dropped: word(4)?,
            buf: [None; REORDER_CAP],
            live: 0,
        };
        let mut live = 0;
        for (i, slot) in gate.buf.iter_mut().enumerate() {
            let at = 5 + i * 4;
            let (seq, far, fp, flags) = (word(at)?, word(at + 1)?, word(at + 2)?, word(at + 3)?);
            match flags {
                0 => {
                    if seq != 0 || far != 0 || fp != 0 {
                        return None;
                    }
                }
                1 | 3 => {
                    *slot = Some((
                        seq,
                        MonitorSample {
                            far_ms: f64::from_bits(far),
                            path_fp: fp,
                            far_addr_ok: flags & 2 != 0,
                        },
                    ));
                    live += 1;
                }
                _ => return None,
            }
        }
        gate.live = live;
        Some(gate)
    }
}

pub(crate) fn health_token(h: LinkHealth) -> u64 {
    match h {
        LinkHealth::Clean => 0,
        LinkHealth::Gappy => 1,
        LinkHealth::RateLimited => 2,
        LinkHealth::PathChange => 3,
        LinkHealth::AddrUnstable => 4,
        LinkHealth::Silent => 5,
    }
}

fn health_from_token(t: u64) -> Option<LinkHealth> {
    Some(match t {
        0 => LinkHealth::Clean,
        1 => LinkHealth::Gappy,
        2 => LinkHealth::RateLimited,
        3 => LinkHealth::PathChange,
        4 => LinkHealth::AddrUnstable,
        5 => LinkHealth::Silent,
        _ => return None,
    })
}

/// The batch reference view of the streaming path: run a fresh [`LinkState`]
/// over a whole `(far_ms, path_fp)` series and collect the congestion
/// events with their masked flags. The `(up, down)` pairs are exactly
/// [`ixp_chgpt::online_events`] on `far_ms` (the equivalence suite asserts
/// this); the masked flag applies the same causal path-change rule the
/// resident service applies sample-by-sample.
pub fn masked_online_events(
    far_ms: &[f64],
    path_fp: &[u64],
    cfg: &MonitorConfig,
) -> Vec<MonitorEvent> {
    let mut st = LinkState::with_config(cfg);
    let mut out = Vec::new();
    let mut open: Option<(usize, bool)> = None;
    for (i, &x) in far_ms.iter().enumerate() {
        let s = MonitorSample {
            far_ms: x,
            path_fp: path_fp.get(i).copied().unwrap_or(0),
            far_addr_ok: true,
        };
        match st.push(&s, cfg) {
            LinkUpdate { verdict: OnlineVerdict::UpshiftAlarm, masked, .. } => {
                open = Some((i, masked));
            }
            LinkUpdate { verdict: OnlineVerdict::DownshiftAlarm, .. } => {
                if let Some((up, masked)) = open.take() {
                    out.push(MonitorEvent { up, down: i, masked });
                }
            }
            _ => {}
        }
    }
    if let Some((up, masked)) = open {
        out.push(MonitorEvent { up, down: far_ms.len(), masked });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_chgpt::online_events;

    fn noisy_step(pattern: &[(usize, f64)], amp: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for &(n, level) in pattern {
            for i in 0..n {
                let h = (out.len() as u64 ^ (i as u64) << 9).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let u = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                out.push(level + amp * u);
            }
        }
        out
    }

    #[test]
    fn streaming_equals_online_events() {
        let mut series = noisy_step(&[(300, 2.0), (80, 24.0), (300, 2.0), (80, 28.0), (100, 2.0)], 1.0);
        // Punch some gaps in.
        for i in (13..series.len()).step_by(41) {
            series[i] = f64::NAN;
        }
        let cfg = MonitorConfig::default();
        let batch = online_events(&series, cfg.online);
        let streamed: Vec<(usize, usize)> = masked_online_events(&series, &vec![0; series.len()], &cfg)
            .into_iter()
            .map(|e| (e.up, e.down))
            .collect();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn upshift_near_path_change_is_masked() {
        let series = noisy_step(&[(300, 2.0), (100, 25.0)], 0.5);
        let mut fp = vec![0xAAu64; series.len()];
        // The path flips right where the level shifts: a routing artifact.
        for f in fp[300..].iter_mut() {
            *f = 0xBB;
        }
        let cfg = MonitorConfig::default();
        let ev = masked_online_events(&series, &fp, &cfg);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].masked, "{ev:?}");

        // Same shift on a stable path: genuine.
        let stable = masked_online_events(&series, &vec![0xAAu64; series.len()], &cfg);
        assert_eq!(stable.len(), 1);
        assert!(!stable[0].masked);
    }

    #[test]
    fn change_far_from_shift_does_not_mask() {
        let series = noisy_step(&[(300, 2.0), (100, 25.0)], 0.5);
        let mut fp = vec![0xAAu64; series.len()];
        // Path changed 100 rounds before the shift: outside the slack.
        for f in fp[200..].iter_mut() {
            *f = 0xBB;
        }
        let ev = masked_online_events(&series, &fp, &MonitorConfig::default());
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].masked, "{ev:?}");
    }

    #[test]
    fn zero_fingerprint_never_changes_path() {
        let series = noisy_step(&[(300, 2.0), (100, 25.0)], 0.5);
        // Rate-limiter shape: fingerprint known only every 3rd round, but
        // always the same when known.
        let fp: Vec<u64> = (0..series.len()).map(|i| if i % 3 == 0 { 0xAA } else { 0 }).collect();
        let mut st = LinkState::with_config(&MonitorConfig::default());
        let cfg = MonitorConfig::default();
        for (i, &x) in series.iter().enumerate() {
            st.push(&MonitorSample { far_ms: x, path_fp: fp[i], far_addr_ok: true }, &cfg);
        }
        assert_eq!(st.path_changes(), 0);
    }

    #[test]
    fn health_ladder_matches_batch_precedence() {
        let cfg = MonitorConfig::default();
        // Clean link.
        let mut st = LinkState::with_config(&cfg);
        for _ in 0..600 {
            st.push(&MonitorSample::answered(2.0, 0xAA), &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::Clean);

        // Rate-limiter shape: every third round answered.
        let mut st = LinkState::with_config(&cfg);
        for i in 0..600u64 {
            let s = if i % 3 == 0 {
                MonitorSample::answered(2.0, 0xAA)
            } else {
                MonitorSample::lost()
            };
            st.push(&s, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::RateLimited);

        // One long bounded gap in an otherwise clean window.
        let mut st = LinkState::with_config(&cfg);
        for i in 0..280u64 {
            let s = if (60..90).contains(&i) { MonitorSample::lost() } else { MonitorSample::answered(2.0, 0xAA) };
            st.push(&s, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::Gappy);

        // Wrong source address on most answers.
        let mut st = LinkState::with_config(&cfg);
        for _ in 0..200 {
            st.push(&MonitorSample { far_ms: 2.0, path_fp: 0xAA, far_addr_ok: false }, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::AddrUnstable);

        // Dead link: Silent beats everything.
        let mut st = LinkState::with_config(&cfg);
        st.push(&MonitorSample::answered(2.0, 0xAA), &cfg);
        for _ in 0..(cfg.window_rounds / 2) {
            st.push(&MonitorSample::lost(), &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::Silent);

        // Path change outranks gap evidence.
        let mut st = LinkState::with_config(&cfg);
        for i in 0..280u64 {
            let fp = if i < 100 { 0xAA } else { 0xBB };
            let s = if (150..190).contains(&i) {
                MonitorSample::lost()
            } else {
                MonitorSample::answered(2.0, fp)
            };
            st.push(&s, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::PathChange);
    }

    /// Run a `(seq, value)` arrival schedule through a gate and return the
    /// delivered far values plus the final counter state.
    fn run_gate(arrivals: &[(u64, f64)], window: u64) -> (Vec<f64>, SeqGate) {
        let mut gate = SeqGate::new();
        let mut out = Vec::new();
        for &(seq, v) in arrivals {
            gate.admit(seq, MonitorSample::answered(v, 0xAA), window, &mut |s| {
                out.push(s.far_ms);
            });
        }
        (out, gate)
    }

    #[test]
    fn gate_passes_in_order_stream_through() {
        let arrivals: Vec<(u64, f64)> = (0..50).map(|i| (i, i as f64)).collect();
        let (out, gate) = run_gate(&arrivals, 4);
        assert_eq!(out, (0..50).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(gate.next_seq(), 50);
        assert_eq!(gate.duplicates() + gate.stale() + gate.reordered() + gate.dropped(), 0);
    }

    #[test]
    fn gate_heals_reorder_within_window() {
        // 0,1,3,2,4: 3 parks, 2 releases both.
        let (out, gate) = run_gate(&[(0, 0.0), (1, 1.0), (3, 3.0), (2, 2.0), (4, 4.0)], 4);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(gate.reordered(), 1);
        assert_eq!(gate.dropped(), 0);
        assert_eq!(gate.buffered(), 0);
    }

    #[test]
    fn gate_counts_duplicates_and_stale() {
        let (out, gate) = run_gate(
            &[(0, 0.0), (1, 1.0), (1, 1.5), (2, 2.0), (0, 0.5), (2, 2.5)],
            1,
        );
        // Re-sends never reach the detector. With window 1 the duplicate
        // horizon is 1: the seq-0 replay (3 behind) reads as stale.
        assert_eq!(out, vec![0.0, 1.0, 2.0]);
        assert_eq!(gate.duplicates(), 2, "seq 1 and seq 2 re-sent within horizon");
        assert_eq!(gate.stale(), 1, "seq 0 replay is beyond the horizon");
    }

    #[test]
    fn gate_slides_window_and_counts_drops() {
        // Jump from 0 straight to 100 with window 4: sequences 0..96 are
        // given up on (96 dropped), 96..100 still have a chance.
        let (out, gate) = run_gate(&[(100, 100.0)], 4);
        assert!(out.is_empty(), "seq 100 parks until 96..100 resolve");
        assert_eq!(gate.dropped(), 96);
        assert_eq!(gate.next_seq(), 96);
        assert_eq!(gate.buffered(), 1);
    }

    #[test]
    fn gate_window_zero_is_strict_in_order() {
        let (out, gate) = run_gate(&[(0, 0.0), (2, 2.0), (1, 1.0), (3, 3.0)], 0);
        // With no buffer, 2 slides past 1 (dropped), then 1 is stale-or-dup.
        assert_eq!(out, vec![0.0, 2.0, 3.0]);
        assert_eq!(gate.dropped(), 1);
        assert_eq!(gate.duplicates() + gate.stale(), 1);
    }

    #[test]
    fn gate_in_buffer_duplicate_is_counted_once() {
        let (out, gate) = run_gate(&[(0, 0.0), (3, 3.0), (3, 3.5), (1, 1.0), (2, 2.0)], 4);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(gate.duplicates(), 1);
    }

    #[test]
    fn gate_reserved_seq_is_rejected() {
        let (out, gate) = run_gate(&[(u64::MAX, 9.0), (0, 0.0)], 4);
        assert_eq!(out, vec![0.0]);
        assert_eq!(gate.stale(), 1);
    }

    #[test]
    fn gate_never_delivers_out_of_seq_order() {
        // Pseudo-random arrival storm; delivered sequence numbers must be
        // strictly increasing regardless of the mess.
        let mut gate = SeqGate::new();
        let mut last: Option<u64> = None;
        let mut state = 0x1234_5678u64;
        for i in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let jitter = (state >> 33) % 13;
            let seq = (i / 2).saturating_add(jitter).saturating_sub(6);
            gate.admit(
                seq,
                MonitorSample { far_ms: seq as f64, path_fp: 0xAA, far_addr_ok: true },
                5,
                &mut |s| {
                    let q = s.far_ms as u64;
                    if let Some(p) = last {
                        assert!(q > p, "delivered {q} after {p}");
                    }
                    last = Some(q);
                },
            );
        }
        assert!(last.is_some());
    }

    #[test]
    fn gate_encode_decode_roundtrip() {
        let (_, gate) = run_gate(&[(0, 0.0), (5, 5.0), (7, 7.0), (40, 40.0)], 6);
        let mut buf = Vec::new();
        gate.encode_into(&mut buf);
        assert_eq!(buf.len(), SeqGate::ENCODED_LEN);
        let back = SeqGate::decode(&buf).unwrap();
        let mut buf2 = Vec::new();
        back.encode_into(&mut buf2);
        assert_eq!(buf, buf2);
        assert_eq!(back.next_seq(), gate.next_seq());
        assert_eq!(back.buffered(), gate.buffered());
        // Occupied-slot flag words outside {0,1,3} refuse to decode.
        assert!(SeqGate::decode(&buf[..buf.len() - 1]).is_none());
        let mut bad = buf.clone();
        bad[5 * 8 + 24] = 0xFF; // first slot's flags word
        assert!(SeqGate::decode(&bad).is_none());
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let cfg = MonitorConfig::default();
        let mut st = LinkState::with_config(&cfg);
        let series = noisy_step(&[(300, 2.0), (50, 24.0)], 1.0);
        for (i, &x) in series.iter().enumerate() {
            let fp = if i < 200 { 0xAA } else { 0xBB };
            st.push(&MonitorSample { far_ms: if i % 7 == 0 { f64::NAN } else { x }, path_fp: fp, far_addr_ok: i % 11 != 0 }, &cfg);
        }
        let mut buf = Vec::new();
        st.encode_into(&mut buf);
        assert_eq!(buf.len(), LinkState::ENCODED_LEN);
        let back = LinkState::decode(&buf, &cfg).unwrap();
        // Continuing both must stay in lockstep (state equality via re-encode).
        let mut buf2 = Vec::new();
        back.encode_into(&mut buf2);
        assert_eq!(buf, buf2);
        let mut a = st.clone();
        let mut b = back;
        for &x in &series[..100] {
            let ua = a.push(&MonitorSample::answered(x, 0xBB), &cfg);
            let ub = b.push(&MonitorSample::answered(x, 0xBB), &cfg);
            assert_eq!(ua, ub);
        }
        assert!(LinkState::decode(&buf[..buf.len() - 1], &cfg).is_none());
    }
}
