//! Per-link streaming state: online detection, causal path-change masking,
//! and an incremental measurement-health ladder.
//!
//! The contract that everything else leans on: feeding a link's raw far
//! series through [`LinkState::push`] one sample at a time produces exactly
//! the alarm rounds that [`ixp_chgpt::online_events`] reports over the full
//! series. Non-finite samples reach the detector (which counts them as gaps
//! and leaves its state untouched), so round indices line up with series
//! positions with no skip bookkeeping.
//!
//! Masking follows the batch rule from `assess_link_masked`, made causal: a
//! path change at round `c` taints upshifts in `[c, c + slack]`. The batch
//! assessor can also mask an upshift *before* the change (it sees the whole
//! series); a resident monitor cannot know the future, so the backward half
//! of the window is deliberately absent — the equivalence suite pins the
//! causal rule on both the streaming and batch sides.
//!
//! Health mirrors [`tslp_core::health::classify_link`]'s evidence precedence
//! (Silent > AddrUnstable > PathChange > RateLimited > Gappy > Clean) over a
//! tumbling window — the same shape as the batch classifier's per-window
//! labels — using O(1) counters instead of a retained series. It is the
//! documented streaming approximation: loss runs count toward gap evidence
//! once they close (or while still open, at their current length), whereas
//! the batch classifier sees every run's final extent.

use crate::service::MonitorConfig;
use ixp_chgpt::{OnlineDetector, OnlineSnapshot, OnlineVerdict};
use tslp_core::LinkHealth;

/// One ingested measurement round for one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorSample {
    /// Far-side RTT in milliseconds; non-finite = the round went unanswered.
    pub far_ms: f64,
    /// TSLP path fingerprint for the round (0 = unknown, never a change).
    pub path_fp: u64,
    /// Did the far answer come from the expected address? (Ignored for
    /// unanswered rounds.)
    pub far_addr_ok: bool,
}

impl MonitorSample {
    /// An unanswered round.
    pub fn lost() -> MonitorSample {
        MonitorSample { far_ms: f64::NAN, path_fp: 0, far_addr_ok: true }
    }

    /// A clean answered round.
    pub fn answered(far_ms: f64, path_fp: u64) -> MonitorSample {
        MonitorSample { far_ms, path_fp, far_addr_ok: true }
    }
}

/// What one sample did to a link's monitor state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkUpdate {
    /// The round index this sample landed on (0-based, counts every sample).
    pub round: u64,
    /// The detector's verdict for the sample.
    pub verdict: OnlineVerdict,
    /// True when the verdict is an upshift alarm attributed to a recent
    /// path change rather than congestion.
    pub masked: bool,
}

/// One congestion event from the batch reference view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Upshift sample index.
    pub up: usize,
    /// Downshift sample index (series length when the event never closed).
    pub down: usize,
    /// True when the upshift was masked as a path-change artifact.
    pub masked: bool,
}

/// Full streaming state for one monitored link. ~200 bytes, O(1) per sample.
#[derive(Clone, Debug)]
pub struct LinkState {
    det: OnlineDetector,
    /// Last nonzero path fingerprint seen (0 = none yet).
    last_fp: u64,
    /// Round of the most recent fingerprint change (`u64::MAX` = never).
    last_change_round: u64,
    /// Samples pushed (answered or not).
    rounds: u64,
    /// Total fingerprint changes.
    path_changes: u64,
    /// Upshift alarms (masked ones included).
    alarms: u64,
    /// Upshift alarms attributed to path changes.
    masked_alarms: u64,
    // Tumbling health window counters.
    w_rounds: u64,
    w_answered: u64,
    w_addr_bad: u64,
    /// Rounds inside closed loss runs that qualified as gaps.
    w_gap_rounds: u64,
    w_path_changes: u64,
    /// Length of the loss run currently open (may span window boundaries).
    cur_loss_run: u64,
    /// Label of the last completed window (`Clean` until one completes).
    prev_health: LinkHealth,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState::new()
    }
}

impl LinkState {
    /// Fresh state. The detector configuration comes in per-push via
    /// [`MonitorConfig`]? No — the detector owns its config from birth:
    /// build through [`LinkState::with_config`] in real use.
    pub fn new() -> LinkState {
        LinkState::with_config(&MonitorConfig::default())
    }

    /// Fresh state for a service configuration.
    pub fn with_config(cfg: &MonitorConfig) -> LinkState {
        LinkState {
            det: OnlineDetector::new(cfg.online),
            last_fp: 0,
            last_change_round: u64::MAX,
            rounds: 0,
            path_changes: 0,
            alarms: 0,
            masked_alarms: 0,
            w_rounds: 0,
            w_answered: 0,
            w_addr_bad: 0,
            w_gap_rounds: 0,
            w_path_changes: 0,
            cur_loss_run: 0,
            prev_health: LinkHealth::Clean,
        }
    }

    /// Rounds ingested so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total upshift alarms (masked included).
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Upshift alarms masked as path-change artifacts.
    pub fn masked_alarms(&self) -> u64 {
        self.masked_alarms
    }

    /// Total path-fingerprint changes observed.
    pub fn path_changes(&self) -> u64 {
        self.path_changes
    }

    /// The underlying detector (read access for verdict assembly).
    pub fn detector(&self) -> &OnlineDetector {
        &self.det
    }

    /// Ingest one round. `cfg` must be the same configuration every call
    /// (the service guarantees this; mixing configs is a logic error).
    pub fn push(&mut self, s: &MonitorSample, cfg: &MonitorConfig) -> LinkUpdate {
        let round = self.rounds;
        self.rounds += 1;

        // Path-change detection first — mirrors
        // `LinkSeries::path_change_rounds`: a change happens at the round
        // whose nonzero fingerprint differs from the last nonzero one;
        // fingerprint 0 (unanswered / rate-limited rounds) never changes
        // anything. Detected before the detector sees the sample so a shift
        // landing on the change round itself is maskable.
        if s.path_fp != 0 {
            if self.last_fp != 0 && s.path_fp != self.last_fp {
                self.path_changes += 1;
                self.w_path_changes += 1;
                self.last_change_round = round;
            }
            self.last_fp = s.path_fp;
        }

        // Window bookkeeping.
        let answered = s.far_ms.is_finite();
        if answered {
            self.w_answered += 1;
            if !s.far_addr_ok {
                self.w_addr_bad += 1;
            }
            if self.cur_loss_run >= cfg.min_gap_rounds {
                self.w_gap_rounds += self.cur_loss_run.min(self.w_rounds);
            }
            self.cur_loss_run = 0;
        } else {
            self.cur_loss_run += 1;
        }

        let verdict = self.det.push(s.far_ms);
        let mut masked = false;
        if verdict == OnlineVerdict::UpshiftAlarm {
            self.alarms += 1;
            // Causal masking: the change at `c` taints `[c, c + slack]`.
            if self.last_change_round != u64::MAX
                && round - self.last_change_round <= cfg.mask_slack
            {
                masked = true;
                self.masked_alarms += 1;
            }
        }

        self.w_rounds += 1;
        if self.w_rounds >= cfg.window_rounds {
            self.prev_health = self.window_label(cfg);
            self.w_rounds = 0;
            self.w_answered = 0;
            self.w_addr_bad = 0;
            self.w_gap_rounds = 0;
            self.w_path_changes = 0;
            // cur_loss_run deliberately survives: an outage spanning the
            // boundary keeps accumulating toward Silent evidence.
        }

        LinkUpdate { round, verdict, masked }
    }

    /// The health label over the current (in-progress) window, falling back
    /// to the last completed window's label while the new window is still
    /// too young to say anything (fewer than `min_gap_rounds` rounds).
    pub fn health(&self, cfg: &MonitorConfig) -> LinkHealth {
        if self.w_rounds < cfg.min_gap_rounds {
            return self.prev_health;
        }
        self.window_label(cfg)
    }

    fn window_label(&self, cfg: &MonitorConfig) -> LinkHealth {
        let rounds = self.w_rounds;
        if rounds == 0 {
            return self.prev_health;
        }
        // An open loss run contributes at its current length once it
        // qualifies, clipped to this window.
        let open_gap = if self.cur_loss_run >= cfg.min_gap_rounds {
            self.cur_loss_run.min(rounds)
        } else {
            0
        };
        let gap_rounds = (self.w_gap_rounds + open_gap).min(rounds);
        let validity = self.w_answered as f64 / rounds as f64;
        let trailing = self.cur_loss_run as f64 / cfg.window_rounds as f64;
        if validity < cfg.silent_validity || trailing >= cfg.silent_tail_fraction {
            return LinkHealth::Silent;
        }
        let consistency = if self.w_answered == 0 {
            1.0
        } else {
            (self.w_answered - self.w_addr_bad) as f64 / self.w_answered as f64
        };
        if consistency < cfg.min_addr_consistency {
            return LinkHealth::AddrUnstable;
        }
        if self.w_path_changes > 0 {
            return LinkHealth::PathChange;
        }
        let lost = rounds - self.w_answered;
        let scattered = lost.saturating_sub(gap_rounds);
        let outside = rounds - gap_rounds;
        if outside > 0 && scattered as f64 / outside as f64 > cfg.max_scattered_loss {
            return LinkHealth::RateLimited;
        }
        if gap_rounds > 0 {
            return LinkHealth::Gappy;
        }
        LinkHealth::Clean
    }

    /// Fixed-layout encode for checkpointing: 23 u64 little-endian words.
    /// The detector config is not serialized — it is rebuilt from the
    /// service config, which the checkpoint fingerprint binds.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        let d = self.det.snapshot();
        let words: [u64; 23] = [
            d.baseline.to_bits(),
            d.warmup_seen as u64,
            d.warmup_sum.to_bits(),
            d.s_up.to_bits(),
            d.s_down.to_bits(),
            d.elevated as u64,
            d.level_before.to_bits(),
            d.elevated_sum.to_bits(),
            d.elevated_n as u64,
            d.gaps,
            self.last_fp,
            self.last_change_round,
            self.rounds,
            self.path_changes,
            self.alarms,
            self.masked_alarms,
            self.w_rounds,
            self.w_answered,
            self.w_addr_bad,
            self.w_gap_rounds,
            self.w_path_changes,
            self.cur_loss_run,
            health_token(self.prev_health),
        ];
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Number of encoded bytes per link.
    pub(crate) const ENCODED_LEN: usize = 23 * 8;

    /// Decode a state previously written by [`LinkState::encode_into`].
    pub(crate) fn decode(bytes: &[u8], cfg: &MonitorConfig) -> Option<LinkState> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let mut words = [0u64; 23];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().ok()?);
        }
        let snap = OnlineSnapshot {
            cfg: cfg.online,
            baseline: f64::from_bits(words[0]),
            warmup_seen: words[1] as usize,
            warmup_sum: f64::from_bits(words[2]),
            s_up: f64::from_bits(words[3]),
            s_down: f64::from_bits(words[4]),
            elevated: words[5] != 0,
            level_before: f64::from_bits(words[6]),
            elevated_sum: f64::from_bits(words[7]),
            elevated_n: words[8] as usize,
            gaps: words[9],
        };
        Some(LinkState {
            det: OnlineDetector::restore(&snap),
            last_fp: words[10],
            last_change_round: words[11],
            rounds: words[12],
            path_changes: words[13],
            alarms: words[14],
            masked_alarms: words[15],
            w_rounds: words[16],
            w_answered: words[17],
            w_addr_bad: words[18],
            w_gap_rounds: words[19],
            w_path_changes: words[20],
            cur_loss_run: words[21],
            prev_health: health_from_token(words[22])?,
        })
    }
}

fn health_token(h: LinkHealth) -> u64 {
    match h {
        LinkHealth::Clean => 0,
        LinkHealth::Gappy => 1,
        LinkHealth::RateLimited => 2,
        LinkHealth::PathChange => 3,
        LinkHealth::AddrUnstable => 4,
        LinkHealth::Silent => 5,
    }
}

fn health_from_token(t: u64) -> Option<LinkHealth> {
    Some(match t {
        0 => LinkHealth::Clean,
        1 => LinkHealth::Gappy,
        2 => LinkHealth::RateLimited,
        3 => LinkHealth::PathChange,
        4 => LinkHealth::AddrUnstable,
        5 => LinkHealth::Silent,
        _ => return None,
    })
}

/// The batch reference view of the streaming path: run a fresh [`LinkState`]
/// over a whole `(far_ms, path_fp)` series and collect the congestion
/// events with their masked flags. The `(up, down)` pairs are exactly
/// [`ixp_chgpt::online_events`] on `far_ms` (the equivalence suite asserts
/// this); the masked flag applies the same causal path-change rule the
/// resident service applies sample-by-sample.
pub fn masked_online_events(
    far_ms: &[f64],
    path_fp: &[u64],
    cfg: &MonitorConfig,
) -> Vec<MonitorEvent> {
    let mut st = LinkState::with_config(cfg);
    let mut out = Vec::new();
    let mut open: Option<(usize, bool)> = None;
    for (i, &x) in far_ms.iter().enumerate() {
        let s = MonitorSample {
            far_ms: x,
            path_fp: path_fp.get(i).copied().unwrap_or(0),
            far_addr_ok: true,
        };
        match st.push(&s, cfg) {
            LinkUpdate { verdict: OnlineVerdict::UpshiftAlarm, masked, .. } => {
                open = Some((i, masked));
            }
            LinkUpdate { verdict: OnlineVerdict::DownshiftAlarm, .. } => {
                if let Some((up, masked)) = open.take() {
                    out.push(MonitorEvent { up, down: i, masked });
                }
            }
            _ => {}
        }
    }
    if let Some((up, masked)) = open {
        out.push(MonitorEvent { up, down: far_ms.len(), masked });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixp_chgpt::online_events;

    fn noisy_step(pattern: &[(usize, f64)], amp: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for &(n, level) in pattern {
            for i in 0..n {
                let h = (out.len() as u64 ^ (i as u64) << 9).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let u = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                out.push(level + amp * u);
            }
        }
        out
    }

    #[test]
    fn streaming_equals_online_events() {
        let mut series = noisy_step(&[(300, 2.0), (80, 24.0), (300, 2.0), (80, 28.0), (100, 2.0)], 1.0);
        // Punch some gaps in.
        for i in (13..series.len()).step_by(41) {
            series[i] = f64::NAN;
        }
        let cfg = MonitorConfig::default();
        let batch = online_events(&series, cfg.online);
        let streamed: Vec<(usize, usize)> = masked_online_events(&series, &vec![0; series.len()], &cfg)
            .into_iter()
            .map(|e| (e.up, e.down))
            .collect();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn upshift_near_path_change_is_masked() {
        let series = noisy_step(&[(300, 2.0), (100, 25.0)], 0.5);
        let mut fp = vec![0xAAu64; series.len()];
        // The path flips right where the level shifts: a routing artifact.
        for f in fp[300..].iter_mut() {
            *f = 0xBB;
        }
        let cfg = MonitorConfig::default();
        let ev = masked_online_events(&series, &fp, &cfg);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].masked, "{ev:?}");

        // Same shift on a stable path: genuine.
        let stable = masked_online_events(&series, &vec![0xAAu64; series.len()], &cfg);
        assert_eq!(stable.len(), 1);
        assert!(!stable[0].masked);
    }

    #[test]
    fn change_far_from_shift_does_not_mask() {
        let series = noisy_step(&[(300, 2.0), (100, 25.0)], 0.5);
        let mut fp = vec![0xAAu64; series.len()];
        // Path changed 100 rounds before the shift: outside the slack.
        for f in fp[200..].iter_mut() {
            *f = 0xBB;
        }
        let ev = masked_online_events(&series, &fp, &MonitorConfig::default());
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].masked, "{ev:?}");
    }

    #[test]
    fn zero_fingerprint_never_changes_path() {
        let series = noisy_step(&[(300, 2.0), (100, 25.0)], 0.5);
        // Rate-limiter shape: fingerprint known only every 3rd round, but
        // always the same when known.
        let fp: Vec<u64> = (0..series.len()).map(|i| if i % 3 == 0 { 0xAA } else { 0 }).collect();
        let mut st = LinkState::with_config(&MonitorConfig::default());
        let cfg = MonitorConfig::default();
        for (i, &x) in series.iter().enumerate() {
            st.push(&MonitorSample { far_ms: x, path_fp: fp[i], far_addr_ok: true }, &cfg);
        }
        assert_eq!(st.path_changes(), 0);
    }

    #[test]
    fn health_ladder_matches_batch_precedence() {
        let cfg = MonitorConfig::default();
        // Clean link.
        let mut st = LinkState::with_config(&cfg);
        for _ in 0..600 {
            st.push(&MonitorSample::answered(2.0, 0xAA), &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::Clean);

        // Rate-limiter shape: every third round answered.
        let mut st = LinkState::with_config(&cfg);
        for i in 0..600u64 {
            let s = if i % 3 == 0 {
                MonitorSample::answered(2.0, 0xAA)
            } else {
                MonitorSample::lost()
            };
            st.push(&s, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::RateLimited);

        // One long bounded gap in an otherwise clean window.
        let mut st = LinkState::with_config(&cfg);
        for i in 0..280u64 {
            let s = if (60..90).contains(&i) { MonitorSample::lost() } else { MonitorSample::answered(2.0, 0xAA) };
            st.push(&s, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::Gappy);

        // Wrong source address on most answers.
        let mut st = LinkState::with_config(&cfg);
        for _ in 0..200 {
            st.push(&MonitorSample { far_ms: 2.0, path_fp: 0xAA, far_addr_ok: false }, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::AddrUnstable);

        // Dead link: Silent beats everything.
        let mut st = LinkState::with_config(&cfg);
        st.push(&MonitorSample::answered(2.0, 0xAA), &cfg);
        for _ in 0..(cfg.window_rounds / 2) {
            st.push(&MonitorSample::lost(), &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::Silent);

        // Path change outranks gap evidence.
        let mut st = LinkState::with_config(&cfg);
        for i in 0..280u64 {
            let fp = if i < 100 { 0xAA } else { 0xBB };
            let s = if (150..190).contains(&i) {
                MonitorSample::lost()
            } else {
                MonitorSample::answered(2.0, fp)
            };
            st.push(&s, &cfg);
        }
        assert_eq!(st.health(&cfg), LinkHealth::PathChange);
    }

    #[test]
    fn encode_decode_roundtrip_is_exact() {
        let cfg = MonitorConfig::default();
        let mut st = LinkState::with_config(&cfg);
        let series = noisy_step(&[(300, 2.0), (50, 24.0)], 1.0);
        for (i, &x) in series.iter().enumerate() {
            let fp = if i < 200 { 0xAA } else { 0xBB };
            st.push(&MonitorSample { far_ms: if i % 7 == 0 { f64::NAN } else { x }, path_fp: fp, far_addr_ok: i % 11 != 0 }, &cfg);
        }
        let mut buf = Vec::new();
        st.encode_into(&mut buf);
        assert_eq!(buf.len(), LinkState::ENCODED_LEN);
        let back = LinkState::decode(&buf, &cfg).unwrap();
        // Continuing both must stay in lockstep (state equality via re-encode).
        let mut buf2 = Vec::new();
        back.encode_into(&mut buf2);
        assert_eq!(buf, buf2);
        let mut a = st.clone();
        let mut b = back;
        for &x in &series[..100] {
            let ua = a.push(&MonitorSample::answered(x, 0xBB), &cfg);
            let ub = b.push(&MonitorSample::answered(x, 0xBB), &cfg);
            assert_eq!(ua, ub);
        }
        assert!(LinkState::decode(&buf[..buf.len() - 1], &cfg).is_none());
    }
}
