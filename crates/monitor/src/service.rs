//! The resident monitor service: shard layout, batched ingestion with
//! admission control, supervised recovery, live gauges, and
//! checkpoint/resume.
//!
//! ## Admission control and supervision
//!
//! [`MonitorService::ingest_sequenced`] is the untrusted-collector path:
//! unknown ids and reserved sequences are rejected, per-shard demand beyond
//! [`MonitorConfig::max_shard_batch`] is shed by a seeded hash at
//! single-threaded partition time (so shed decisions are bit-identical at
//! any thread count), and each link's [`SeqGate`] heals small reorders,
//! counts duplicates/stale replays, and abandons sequences the window slid
//! past — nothing disordered ever reaches the CUSUM state. Worker panics
//! are caught per shard: the shard restores from its last good checkpoint
//! (through the store attached via [`MonitorService::set_store`]) and its
//! items replay; a second panic quarantines the shard until the next
//! successful pass. [`MonitorService::mode`] reports
//! [`ServiceMode::Degraded`] while any of this is recent — the other
//! shards' verdicts keep flowing throughout.
//!
//! ## Shard layout and memory model
//!
//! Link states live in `shards` mutex-guarded slabs (link `id` → shard
//! `id % shards`, slot `id / shards`, the same striding as the verdict
//! index). A batch of samples is partitioned per shard in arrival order,
//! then each shard is processed independently — sequentially or by a
//! work-claiming thread pool — and its verdicts published to the index
//! under one write lock per shard per batch. Because the partition is
//! stable and shards share nothing, per-link sample order is preserved at
//! any thread count, and the resulting states are **bit-identical** whether
//! one thread or eight did the work.
//!
//! Steady-state memory is O(links × window): each link holds ~200 bytes of
//! detector + health-window state, and nothing retains an RTT series.
//!
//! ## Checkpoint/resume
//!
//! [`MonitorService::checkpoint`] writes one fingerprint-bound blob per
//! shard through [`CheckpointStore::store_blob`]; [`MonitorService::resume`]
//! rebuilds every link state and republishes verdicts. The fingerprint
//! mixes the full monitor configuration and link count, so a layout or
//! config change makes old blobs a miss (rebuild from scratch), never a
//! corrupt resume. Continuing the stream after resume is bit-identical to
//! never having stopped — tested at 1 and 3 ingest threads.

use crate::index::{LinkVerdict, VerdictIndex};
use crate::state::{health_token, LinkState, LinkUpdate, MonitorSample, SeqGate};
use ixp_chgpt::{OnlineConfig, OnlineVerdict};
use ixp_obs::{FlightRecorder, RateMeter, Recorder, TraceEvent, TraceKind, NO_LINK};
use ixp_simnet::rng::mix;
use parking_lot::Mutex;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tslp_core::{BlobStatus, CheckpointStore};

/// Full configuration of the resident monitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Online detector configuration (shared by every link).
    pub online: OnlineConfig,
    /// Number of state/index shards.
    pub shards: usize,
    /// Ingest worker threads (0 = all cores, 1 = sequential).
    pub threads: usize,
    /// A path change at round `c` masks upshifts in `[c, c + mask_slack]`.
    pub mask_slack: u64,
    /// Tumbling health-window length in rounds (288 = one day at 5 min).
    pub window_rounds: u64,
    /// Loss runs at least this long count as gap evidence (not scattered
    /// loss). 6 rounds = the paper's 30-minute minimum on the 5-min grid.
    pub min_gap_rounds: u64,
    /// Scattered loss above this fraction reads as rate limiting.
    pub max_scattered_loss: f64,
    /// Address consistency below this reads as AddrUnstable.
    pub min_addr_consistency: f64,
    /// Window validity below this reads as Silent.
    pub silent_validity: f64,
    /// An open loss run covering this fraction of a window reads as Silent.
    pub silent_tail_fraction: f64,
    /// Sequence reorder window for [`MonitorService::ingest_sequenced`]:
    /// samples up to this many sequence numbers ahead are buffered and
    /// healed into order (clamped to [`crate::state::REORDER_CAP`]).
    pub reorder_window: u64,
    /// Per-shard, per-batch admission bound (0 = unbounded): demand beyond
    /// it is shed deterministically before workers start.
    pub max_shard_batch: usize,
    /// Seed for the deterministic load-shedding hash — shed decisions are a
    /// pure function of (seed, link, seq, batch), never of thread timing.
    pub shed_seed: u64,
    /// How many batches a shed/restart event keeps the service reporting
    /// [`ServiceMode::Degraded`] after the pressure clears.
    pub degraded_hold: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            online: OnlineConfig::default(),
            shards: 16,
            threads: 1,
            mask_slack: 6,
            window_rounds: 288,
            min_gap_rounds: 6,
            max_scattered_loss: 0.25,
            min_addr_consistency: 0.90,
            silent_validity: 0.05,
            silent_tail_fraction: 0.35,
            reorder_window: 4,
            max_shard_batch: 0,
            shed_seed: 0x5EED,
            degraded_hold: 3,
        }
    }
}

/// Coarse service health, driven by shard pressure and supervision events.
///
/// `Degraded` means at least one shard recently shed load, was restarted
/// after a panic, or is quarantined — the rest of the fleet keeps getting
/// fresh verdicts; only the affected shard's links may lag. The mode clears
/// itself [`MonitorConfig::degraded_hold`] batches after the last event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceMode {
    /// Every shard admitted its full demand and no supervision fired.
    Healthy,
    /// Some shard shed load, restarted, or sits quarantined.
    Degraded,
}

/// What one [`MonitorService::ingest_sequenced`] batch did — the admission
/// and supervision accounting a collector uses to see its own data quality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReport {
    /// Samples handed to shard workers (batch − rejected − shed).
    pub accepted: u64,
    /// Samples released into detectors (in-order + healed reorders).
    pub delivered: u64,
    /// Samples refused at the door: unknown link id or reserved sequence.
    pub rejected: u64,
    /// Samples shed by per-shard admission control before workers started.
    pub shed: u64,
    /// Duplicate sequence numbers detected by the per-link gates.
    pub duplicates: u64,
    /// Ancient sequence replays detected by the per-link gates.
    pub stale: u64,
    /// Samples delivered out of arrival order via the reorder buffers.
    pub reordered: u64,
    /// Sequence numbers given up on (window slid past them).
    pub dropped: u64,
    /// Shard restarts the supervisor performed during this batch.
    pub restarts: u64,
    /// Service mode after the batch.
    pub mode: ServiceMode,
}

/// Per-link sequence-gate counters, for dashboards and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Next sequence number the link's gate will deliver.
    pub next_seq: u64,
    /// Duplicate sequence numbers seen.
    pub duplicates: u64,
    /// Ancient sequence replays seen.
    pub stale: u64,
    /// Samples healed into order via the reorder buffer.
    pub reordered: u64,
    /// Sequence numbers given up on.
    pub dropped: u64,
    /// Samples currently parked in the reorder buffer.
    pub buffered: usize,
}

/// How one shard came back in [`MonitorService::resume_resilient`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardRecovery {
    /// Checkpoint blob decoded cleanly; the shard resumed bit-identically.
    Restored,
    /// No blob on disk; the shard rebuilt from scratch.
    RebuiltMissing,
    /// Blob was intact but from a foreign deployment; rebuilt from scratch.
    RebuiltStale,
    /// Blob was damaged (bad CRC, torn frame); quarantined to a `.corrupt`
    /// sidecar and the shard rebuilt from scratch.
    RebuiltCorrupt,
}

/// Per-shard outcome of a resilient resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardRecovery>,
}

impl ResumeReport {
    /// True when every shard resumed from its checkpoint.
    pub fn all_restored(&self) -> bool {
        self.shards.iter().all(|s| *s == ShardRecovery::Restored)
    }

    /// Number of shards that had to rebuild from scratch.
    pub fn rebuilt(&self) -> usize {
        self.shards.iter().filter(|s| **s != ShardRecovery::Restored).count()
    }
}

/// Static description of one monitored link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDesc {
    /// IXP the link belongs to (dense id; drives per-IXP aggregates).
    pub ixp: u32,
}

/// Fingerprint binding checkpoints to one monitor deployment: configuration
/// (detector, shard layout, health thresholds, admission control) and link
/// count. Thread count and `degraded_hold` are deliberately excluded — the
/// link state does not depend on them. The magic word is versioned with the
/// checkpoint payload layout: v3 blobs grow each [`LinkState`] by four
/// provenance words (path fingerprint before the last change, last-alarm
/// round/gap/mask), so v2 deployments read as a miss, never a mis-decode.
pub fn monitor_fingerprint(cfg: &MonitorConfig, n_links: usize) -> u64 {
    mix(&[
        0x4D4F_4E49_544F_5233, // "MONITOR3"
        cfg.reorder_window,
        cfg.max_shard_batch as u64,
        cfg.shed_seed,
        cfg.online.kappa.to_bits(),
        cfg.online.h.to_bits(),
        cfg.online.warmup as u64,
        cfg.online.baseline_gain.to_bits(),
        cfg.shards as u64,
        cfg.mask_slack,
        cfg.window_rounds,
        cfg.min_gap_rounds,
        cfg.max_scattered_loss.to_bits(),
        cfg.min_addr_consistency.to_bits(),
        cfg.silent_validity.to_bits(),
        cfg.silent_tail_fraction.to_bits(),
        n_links as u64,
    ])
}

/// One shard's mutable state: link detectors plus their admission gates,
/// indexed by slot (`id / shards`). Kept together so one lock guards both.
struct ShardSlab {
    links: Vec<LinkState>,
    gates: Vec<SeqGate>,
}

/// Per-shard supervision bookkeeping (all lock-free).
struct ShardMeta {
    /// Batch index of the last shed event (`u64::MAX` = never).
    last_shed_batch: AtomicU64,
    /// Batch index of the last supervised restart (`u64::MAX` = never).
    last_restart_batch: AtomicU64,
    /// Total supervised restarts of this shard.
    restarts: AtomicU64,
    /// True while the shard is quarantined: its last restart panicked
    /// again on replay. Cleared by the next successful pass.
    quarantined: AtomicBool,
}

impl ShardMeta {
    fn new() -> ShardMeta {
        ShardMeta {
            last_shed_batch: AtomicU64::new(u64::MAX),
            last_restart_batch: AtomicU64::new(u64::MAX),
            restarts: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
        }
    }
}

/// A chaos-hook instruction: panic inside `shard`'s worker during batch
/// `batch`, after `after_items` items have been processed.
struct ArmedPanic {
    shard: usize,
    batch: u64,
    after_items: usize,
}

/// Per-batch gate accounting folded by the shard workers (atomic because
/// workers run concurrently; sums are order-independent, so the totals are
/// deterministic).
#[derive(Default)]
struct BatchAcc {
    delivered: AtomicU64,
    duplicates: AtomicU64,
    stale: AtomicU64,
    reordered: AtomicU64,
    dropped: AtomicU64,
    restarts: AtomicU64,
}

/// Plain (non-atomic) gate totals returned by one shard's sequenced pass.
#[derive(Default, Clone, Copy)]
struct GateTotals {
    delivered: u64,
    duplicates: u64,
    stale: u64,
    reordered: u64,
    dropped: u64,
}

/// The resident monitoring service. See the module docs for the layout.
pub struct MonitorService {
    cfg: MonitorConfig,
    /// Per-link IXP ids (index = link id).
    ixp_of: Vec<u32>,
    n_ixps: usize,
    shards: Vec<Mutex<ShardSlab>>,
    metas: Vec<ShardMeta>,
    index: VerdictIndex,
    ingest_meter: RateMeter,
    ingested: AtomicU64,
    /// High-water per-shard demand (pre-shedding) since the last gauge
    /// publication — overload is visible *before* shedding starts.
    shard_backlog_max: AtomicU64,
    /// Batches ingested (raw or sequenced) — the supervision clock.
    batches: AtomicU64,
    /// Attached checkpoint store, used by the supervisor to restore a
    /// panicked shard from its last good blob. `None` = rebuild fresh.
    store: Mutex<Option<CheckpointStore>>,
    /// Armed chaos panics (test/fire-drill hook).
    chaos: Mutex<Vec<ArmedPanic>>,
    /// Fast path: skip the chaos lock entirely when nothing is armed.
    chaos_armed: AtomicBool,
    shed_total: AtomicU64,
    rejected_total: AtomicU64,
    seq_duplicates: AtomicU64,
    seq_stale: AtomicU64,
    seq_reordered: AtomicU64,
    seq_dropped: AtomicU64,
    /// Attached flight recorder (`None` = tracing off; the hot path checks
    /// `tracing` first so an untraced deployment pays one relaxed load per
    /// shard pass, nothing per sample).
    flight: Mutex<Option<Arc<FlightRecorder>>>,
    /// Fast flag mirroring `flight.is_some()`.
    tracing: AtomicBool,
    /// `(batch, mode)` transition log, recorded whether or not a flight
    /// recorder is attached (feeds the run manifest's mode history).
    mode_log: Mutex<Vec<(u64, ServiceMode)>>,
    /// Mirror of the last observed mode (true = Degraded), so transition
    /// detection costs one atomic compare per batch.
    mode_degraded: AtomicBool,
    /// Black-box bundles written so far (also names the next blob).
    trace_dumps: AtomicU64,
}

impl MonitorService {
    /// A fresh service monitoring `links`.
    pub fn new(cfg: MonitorConfig, links: &[LinkDesc]) -> MonitorService {
        let shards = cfg.shards.max(1);
        let n = links.len();
        let ixp_of: Vec<u32> = links.iter().map(|l| l.ixp).collect();
        let n_ixps = ixp_of.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut slabs = Vec::with_capacity(shards);
        for s in 0..shards {
            let slots = n / shards + usize::from(s < n % shards);
            slabs.push(Mutex::new(ShardSlab {
                links: (0..slots).map(|_| LinkState::with_config(&cfg)).collect(),
                gates: (0..slots).map(|_| SeqGate::new()).collect(),
            }));
        }
        MonitorService {
            cfg,
            ixp_of,
            n_ixps,
            shards: slabs,
            metas: (0..shards).map(|_| ShardMeta::new()).collect(),
            index: VerdictIndex::new(n, shards, n_ixps),
            ingest_meter: RateMeter::new(),
            ingested: AtomicU64::new(0),
            shard_backlog_max: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            store: Mutex::new(None),
            chaos: Mutex::new(Vec::new()),
            chaos_armed: AtomicBool::new(false),
            shed_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            seq_duplicates: AtomicU64::new(0),
            seq_stale: AtomicU64::new(0),
            seq_reordered: AtomicU64::new(0),
            seq_dropped: AtomicU64::new(0),
            flight: Mutex::new(None),
            tracing: AtomicBool::new(false),
            mode_log: Mutex::new(Vec::new()),
            mode_degraded: AtomicBool::new(false),
            trace_dumps: AtomicU64::new(0),
        }
    }

    /// Attach a flight recorder: every admission verdict, reorder heal,
    /// health transition, mask decision, online changepoint, checkpoint
    /// event, and supervision step is traced into its ring, and incidents
    /// (worker panic, shard quarantine, Degraded entry) dump a black-box
    /// bundle through the attached checkpoint store. Without one, the trace
    /// paths cost one relaxed load per shard pass — detector state stays
    /// bit-identical either way.
    pub fn attach_flight_recorder(&self, fl: Arc<FlightRecorder>) {
        *self.flight.lock() = Some(fl);
        self.tracing.store(true, Ordering::Release);
    }

    /// Detach the flight recorder, returning it (with its rings intact, so
    /// a final dump is still possible). Batches already in flight may still
    /// trace; new batches run the uninstrumented path. Detector state is
    /// unaffected — tracing never alters behavior, only records it.
    pub fn detach_flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.tracing.store(false, Ordering::Release);
        self.flight.lock().take()
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.flight.lock().clone()
    }

    /// Service-mode transitions observed so far, as `(batch, mode)` pairs
    /// in batch order (empty until the first Healthy↔Degraded flip).
    pub fn mode_history(&self) -> Vec<(u64, ServiceMode)> {
        self.mode_log.lock().clone()
    }

    /// Black-box trace bundles dumped so far.
    pub fn trace_dumps(&self) -> u64 {
        self.trace_dumps.load(Ordering::Relaxed)
    }

    /// The flight recorder when tracing is live (one relaxed load on the
    /// common path).
    fn flight_if_live(&self) -> Option<Arc<FlightRecorder>> {
        if !self.tracing.load(Ordering::Acquire) {
            return None;
        }
        self.flight.lock().clone()
    }

    /// Write the flight recorder's current contents as a versioned black-box
    /// bundle through the attached store. Quietly a no-op when either the
    /// recorder or the store is missing — incident handling must never be
    /// able to fail the ingest path.
    fn dump_incident(&self, reason: &str) {
        let Some(fl) = self.flight_if_live() else { return };
        let store = self.store.lock();
        let Some(st) = store.as_ref() else { return };
        let n = self.trace_dumps.load(Ordering::Relaxed);
        let payload = fl.dump_jsonl(reason);
        if st.store_blob(&format!("trace-dump-{n:03}"), &payload).is_ok() {
            self.trace_dumps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Detect and record a service-mode transition after batch `batch`.
    /// Entering Degraded is an incident: the flight recorder (when present)
    /// dumps its black box.
    fn note_mode(&self, batch: u64) {
        let degraded = self.mode() == ServiceMode::Degraded;
        if self.mode_degraded.swap(degraded, Ordering::Relaxed) == degraded {
            return;
        }
        let mode = if degraded { ServiceMode::Degraded } else { ServiceMode::Healthy };
        self.mode_log.lock().push((batch, mode));
        if let Some(fl) = self.flight_if_live() {
            Recorder::trace(
                fl.as_ref(),
                TraceEvent::new(TraceKind::ModeChange, batch, 0, NO_LINK)
                    .a(u64::from(degraded)),
            );
        }
        if degraded {
            self.dump_incident("degraded-entry");
        }
    }

    /// Attach a checkpoint store for the supervisor: a panicked shard is
    /// restored from its last good blob here (and a corrupt blob is
    /// quarantined). Without a store, a panicked shard rebuilds fresh.
    pub fn set_store(&self, store: CheckpointStore) {
        *self.store.lock() = Some(store);
    }

    /// Batches ingested so far (raw and sequenced) — the clock chaos hooks
    /// and the Degraded-mode hold are expressed in.
    pub fn batches_ingested(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Arm a chaos panic: the worker processing `shard` during batch
    /// `batch` (absolute index, see [`MonitorService::batches_ingested`])
    /// panics after `after_items` items. The supervisor must recover; this
    /// is the fire-drill hook the resilience gauntlet leans on.
    pub fn arm_panic(&self, shard: usize, batch: u64, after_items: usize) {
        self.chaos.lock().push(ArmedPanic { shard, batch, after_items });
        self.chaos_armed.store(true, Ordering::Release);
    }

    /// Consume the armed panic for `(shard, batch)`, if any. Removal
    /// happens *before* the panic fires so the supervisor's replay of the
    /// same items runs clean.
    fn take_armed(&self, shard: usize, batch: u64) -> Option<usize> {
        if !self.chaos_armed.load(Ordering::Acquire) {
            return None;
        }
        let mut chaos = self.chaos.lock();
        let at = chaos.iter().position(|a| a.shard == shard && a.batch == batch)?;
        let armed = chaos.swap_remove(at);
        if chaos.is_empty() {
            self.chaos_armed.store(false, Ordering::Release);
        }
        Some(armed.after_items)
    }

    /// The service configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Number of monitored links.
    pub fn len(&self) -> usize {
        self.ixp_of.len()
    }

    /// True when no links are monitored.
    pub fn is_empty(&self) -> bool {
        self.ixp_of.is_empty()
    }

    /// The concurrent verdict index (share with reader threads).
    pub fn index(&self) -> &VerdictIndex {
        &self.index
    }

    /// Current verdict for one link (convenience passthrough).
    pub fn verdict(&self, id: u32) -> LinkVerdict {
        self.index.verdict(id)
    }

    /// Total samples ingested.
    pub fn samples_ingested(&self) -> u64 {
        self.ingested.load(Ordering::Relaxed)
    }

    /// Ingest a batch of `(link id, sample)` pairs — the trusted-producer
    /// path (a kernel agent feeding in-order samples). Per-link sample
    /// order within the batch is preserved; the resulting state is
    /// bit-identical at any [`MonitorConfig::threads`] setting. Returns the
    /// per-sample updates in batch order. A worker panic is supervised:
    /// the shard restores from its last good checkpoint (or fresh) and the
    /// shard's items replay.
    pub fn ingest(&self, batch: &[(u32, MonitorSample)]) -> Vec<LinkUpdate> {
        let n_shards = self.shards.len();
        let batch_idx = self.batches.fetch_add(1, Ordering::Relaxed);
        // Stable partition by shard: arrival order preserved per shard,
        // therefore per link.
        let mut per_shard: Vec<Vec<(usize, u32, MonitorSample)>> = vec![Vec::new(); n_shards];
        for (pos, &(id, s)) in batch.iter().enumerate() {
            assert!((id as usize) < self.ixp_of.len(), "unknown link id {id}");
            per_shard[id as usize % n_shards].push((pos, id, s));
        }
        let backlog = per_shard.iter().map(|v| v.len() as u64).max().unwrap_or(0);
        self.shard_backlog_max.fetch_max(backlog, Ordering::Relaxed);

        let mut updates = vec![
            LinkUpdate {
                round: 0,
                verdict: ixp_chgpt::OnlineVerdict::Quiet,
                masked: false,
                health_changed: false,
                health_before: tslp_core::LinkHealth::Clean,
                noteworthy: false,
            };
            batch.len()
        ];
        // Fetched once per batch and passed down by reference: the workers
        // must not pay a lock plus refcount round-trip per shard pass.
        let fl = self.flight_if_live();
        let threads = tslp_core::resolve_threads(self.cfg.threads).min(n_shards.max(1));
        if threads <= 1 {
            for (shard, items) in per_shard.iter().enumerate() {
                self.raw_shard_supervised(shard, items, &mut updates, batch_idx, fl.as_deref());
            }
        } else {
            let next = AtomicUsize::new(0);
            let slices = SliceWriter::new(&mut updates);
            let fl = fl.as_deref();
            std::thread::scope(|sc| {
                for _ in 0..threads {
                    sc.spawn(|| loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= n_shards {
                            break;
                        }
                        // SAFETY (by construction): each batch position
                        // appears in exactly one shard's item list, so no
                        // two workers write the same updates slot.
                        self.raw_shard_supervised(
                            shard,
                            &per_shard[shard],
                            unsafe { slices.get() },
                            batch_idx,
                            fl,
                        );
                    });
                }
            });
        }
        self.ingest_meter.mark(batch.len() as u64);
        self.ingested.fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.note_mode(batch_idx);
        updates
    }

    /// Ingest a batch of `(link id, sequence, sample)` triples — the
    /// untrusted-collector path. Admission control runs first, single
    /// threaded and deterministic: unknown ids and the reserved sequence
    /// `u64::MAX` are rejected; when a shard's demand exceeds
    /// [`MonitorConfig::max_shard_batch`], the excess is shed by seeded
    /// hash (reproducible at any thread count). Surviving samples then pass
    /// their link's [`SeqGate`]: in-order and healed-reorder samples reach
    /// the detector, duplicates/stale/abandoned sequences are counted.
    /// Worker panics are supervised exactly as in [`MonitorService::ingest`].
    pub fn ingest_sequenced(&self, batch: &[(u32, u64, MonitorSample)]) -> IngestReport {
        let n_shards = self.shards.len();
        let batch_idx = self.batches.fetch_add(1, Ordering::Relaxed);
        let fl = self.flight_if_live();
        let mut rejected = 0u64;
        let mut per_shard: Vec<Vec<(u64, u32, MonitorSample)>> = vec![Vec::new(); n_shards];
        for &(id, seq, s) in batch {
            if (id as usize) >= self.ixp_of.len() || seq == u64::MAX {
                rejected += 1;
                if let Some(fl) = fl.as_deref() {
                    // a = the offending sequence; b = the batch it arrived in.
                    Recorder::trace(
                        fl,
                        TraceEvent::new(TraceKind::SampleRejected, seq, 0, id)
                            .a(seq)
                            .b(batch_idx),
                    );
                }
                continue;
            }
            per_shard[id as usize % n_shards].push((seq, id, s));
        }
        // High-water *demand*, recorded before shedding (overload must be
        // visible even when admission control hides it from the workers).
        let demand = per_shard.iter().map(|v| v.len() as u64).max().unwrap_or(0);
        self.shard_backlog_max.fetch_max(demand, Ordering::Relaxed);

        let mut shed = 0u64;
        let cap = self.cfg.max_shard_batch;
        if cap > 0 {
            for (shard, items) in per_shard.iter_mut().enumerate() {
                if items.len() <= cap {
                    continue;
                }
                shed += (items.len() - cap) as u64;
                self.metas[shard].last_shed_batch.store(batch_idx, Ordering::Relaxed);
                // Keep the `cap` items with the smallest seeded priority;
                // the (priority, position) pair is unique, so the selection
                // is total regardless of hash collisions.
                let mut keyed: Vec<(u64, usize)> = items
                    .iter()
                    .enumerate()
                    .map(|(i, &(seq, id, _))| {
                        (mix(&[self.cfg.shed_seed, id as u64, seq, batch_idx]), i)
                    })
                    .collect();
                keyed.select_nth_unstable(cap - 1);
                let mut keep: Vec<usize> = keyed[..cap].iter().map(|&(_, i)| i).collect();
                keep.sort_unstable(); // back to arrival order
                if let Some(fl) = fl.as_deref() {
                    let mut kept_mask = vec![false; items.len()];
                    for &i in &keep {
                        kept_mask[i] = true;
                    }
                    for (i, &(seq, id, _)) in items.iter().enumerate() {
                        if !kept_mask[i] {
                            Recorder::trace(
                                fl,
                                TraceEvent::new(TraceKind::SampleShed, seq, shard as u32, id)
                                    .a(seq)
                                    .b(batch_idx),
                            );
                        }
                    }
                }
                let kept: Vec<(u64, u32, MonitorSample)> =
                    keep.into_iter().map(|i| items[i]).collect();
                *items = kept;
            }
        }
        let accepted: u64 = per_shard.iter().map(|v| v.len() as u64).sum();

        let acc = BatchAcc::default();
        let threads = tslp_core::resolve_threads(self.cfg.threads).min(n_shards.max(1));
        if threads <= 1 {
            for (shard, items) in per_shard.iter().enumerate() {
                self.seq_shard_supervised(shard, items, batch_idx, &acc, fl.as_deref());
            }
        } else {
            let next = AtomicUsize::new(0);
            let flr = fl.as_deref();
            std::thread::scope(|sc| {
                for _ in 0..threads {
                    sc.spawn(|| loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= n_shards {
                            break;
                        }
                        self.seq_shard_supervised(shard, &per_shard[shard], batch_idx, &acc, flr);
                    });
                }
            });
        }

        let delivered = acc.delivered.load(Ordering::Relaxed);
        self.ingest_meter.mark(accepted);
        self.ingested.fetch_add(delivered, Ordering::Relaxed);
        self.shed_total.fetch_add(shed, Ordering::Relaxed);
        self.rejected_total.fetch_add(rejected, Ordering::Relaxed);
        let duplicates = acc.duplicates.load(Ordering::Relaxed);
        let stale = acc.stale.load(Ordering::Relaxed);
        let reordered = acc.reordered.load(Ordering::Relaxed);
        let dropped = acc.dropped.load(Ordering::Relaxed);
        self.seq_duplicates.fetch_add(duplicates, Ordering::Relaxed);
        self.seq_stale.fetch_add(stale, Ordering::Relaxed);
        self.seq_reordered.fetch_add(reordered, Ordering::Relaxed);
        self.seq_dropped.fetch_add(dropped, Ordering::Relaxed);
        self.note_mode(batch_idx);
        IngestReport {
            accepted,
            delivered,
            rejected,
            shed,
            duplicates,
            stale,
            reordered,
            dropped,
            restarts: acc.restarts.load(Ordering::Relaxed),
            mode: self.mode(),
        }
    }

    /// Run one shard's raw pass under the supervisor.
    fn raw_shard_supervised(
        &self,
        shard: usize,
        items: &[(usize, u32, MonitorSample)],
        updates: &mut [LinkUpdate],
        batch: u64,
        fl: Option<&FlightRecorder>,
    ) {
        if items.is_empty() {
            return;
        }
        let _ = self.supervised(shard, batch, items.len(), None, || {
            self.run_shard_raw(shard, items, updates, batch, fl)
        });
    }

    /// Run one shard's sequenced pass under the supervisor, folding its
    /// gate totals into the batch accumulator.
    fn seq_shard_supervised(
        &self,
        shard: usize,
        items: &[(u64, u32, MonitorSample)],
        batch: u64,
        acc: &BatchAcc,
        fl: Option<&FlightRecorder>,
    ) {
        if items.is_empty() {
            return;
        }
        let totals = self.supervised(shard, batch, items.len(), Some(acc), || {
            self.run_shard_seq(shard, items, batch, fl)
        });
        if let Some(t) = totals {
            acc.delivered.fetch_add(t.delivered, Ordering::Relaxed);
            acc.duplicates.fetch_add(t.duplicates, Ordering::Relaxed);
            acc.stale.fetch_add(t.stale, Ordering::Relaxed);
            acc.reordered.fetch_add(t.reordered, Ordering::Relaxed);
            acc.dropped.fetch_add(t.dropped, Ordering::Relaxed);
        }
    }

    /// The supervision tree for one shard pass: catch a panic, restore the
    /// shard from its last good checkpoint (or fresh), replay the items.
    /// A second panic during replay quarantines the shard (restored once
    /// more so readers see the last good state, not a torn one); the next
    /// successful pass clears the quarantine. parking_lot locks release on
    /// unwind (they do not poison), so a panicked worker never wedges
    /// readers or the other shards.
    fn supervised<T>(
        &self,
        shard: usize,
        batch: u64,
        items: usize,
        acc: Option<&BatchAcc>,
        mut run: impl FnMut() -> T,
    ) -> Option<T> {
        if let Ok(v) = catch_unwind(AssertUnwindSafe(&mut run)) {
            self.metas[shard].quarantined.store(false, Ordering::Relaxed);
            return Some(v);
        }
        let meta = &self.metas[shard];
        let restarts = meta.restarts.fetch_add(1, Ordering::Relaxed) + 1;
        meta.last_restart_batch.store(batch, Ordering::Relaxed);
        if let Some(acc) = acc {
            acc.restarts.fetch_add(1, Ordering::Relaxed);
        }
        let fl = self.flight_if_live();
        if let Some(fl) = fl.as_deref() {
            Recorder::trace(
                fl,
                TraceEvent::new(TraceKind::WorkerPanic, batch, shard as u32, NO_LINK).a(restarts),
            );
        }
        self.restore_shard(shard);
        if let Some(fl) = fl.as_deref() {
            Recorder::trace(fl, TraceEvent::new(TraceKind::ShardRestore, batch, shard as u32, NO_LINK));
            Recorder::trace(
                fl,
                TraceEvent::new(TraceKind::CheckpointReplay, batch, shard as u32, NO_LINK)
                    .a(items as u64),
            );
        }
        match catch_unwind(AssertUnwindSafe(&mut run)) {
            Ok(v) => {
                meta.quarantined.store(false, Ordering::Relaxed);
                self.dump_incident("worker-panic-recovered");
                Some(v)
            }
            Err(_) => {
                self.restore_shard(shard);
                meta.quarantined.store(true, Ordering::Relaxed);
                if let Some(fl) = fl.as_deref() {
                    Recorder::trace(
                        fl,
                        TraceEvent::new(TraceKind::ShardQuarantine, batch, shard as u32, NO_LINK),
                    );
                }
                self.dump_incident("shard-quarantine");
                None
            }
        }
    }

    fn run_shard_raw(
        &self,
        shard: usize,
        items: &[(usize, u32, MonitorSample)],
        updates: &mut [LinkUpdate],
        batch: u64,
        fl: Option<&FlightRecorder>,
    ) {
        let boom = self.take_armed(shard, batch);
        let n_shards = self.shards.len();
        let mut verdicts = Vec::with_capacity(items.len());
        {
            let mut slab = self.shards[shard].lock();
            for (done, &(pos, id, ref s)) in items.iter().enumerate() {
                if boom == Some(done) {
                    panic!("armed chaos panic (shard {shard}, batch {batch})");
                }
                let slot = id as usize / n_shards;
                let up = slab.links[slot].push(s, &self.cfg);
                if let Some(fl) = fl {
                    if up.noteworthy {
                        trace_update(fl, shard as u32, id, up, &slab.links[slot]);
                    }
                }
                updates[pos] = up;
                verdicts.push((id, verdict_of(&slab.links[slot], &self.cfg)));
            }
        }
        // Publish outside the state lock: readers contend only with the
        // index write, never with detector math.
        self.index.publish(shard, &verdicts, &self.ixp_of);
    }

    fn run_shard_seq(
        &self,
        shard: usize,
        items: &[(u64, u32, MonitorSample)],
        batch: u64,
        fl: Option<&FlightRecorder>,
    ) -> GateTotals {
        let boom = self.take_armed(shard, batch);
        let n_shards = self.shards.len();
        let mut totals = GateTotals::default();
        let mut verdicts = Vec::with_capacity(items.len());
        {
            let mut slab = self.shards[shard].lock();
            let ShardSlab { links, gates } = &mut *slab;
            // The item loop exists twice, selected once per shard batch:
            // `admit` is generic over the delivery closure, so each arm
            // monomorphizes with exactly the closure it needs. The untraced
            // arm is the pristine hot path — no recorder checks anywhere in
            // its loop body — which keeps an idle recorder slot free and
            // the uninstrumented service bit-identical. The traced arm pays
            // one register test per delivery (quiet samples on a stable
            // link trace nothing; the out-of-line calls are reserved for
            // alarms, health transitions, and non-clean admission deltas).
            match fl {
                None => {
                    for (done, &(seq, id, s)) in items.iter().enumerate() {
                        if boom == Some(done) {
                            panic!("armed chaos panic (shard {shard}, batch {batch})");
                        }
                        let slot = id as usize / n_shards;
                        let cfg = &self.cfg;
                        let d = gates[slot].admit(seq, s, cfg.reorder_window, &mut |smp| {
                            links[slot].push(&smp, cfg);
                        });
                        totals.delivered += u64::from(d.delivered);
                        totals.duplicates += u64::from(d.duplicates);
                        totals.stale += u64::from(d.stale);
                        totals.reordered += u64::from(d.reordered);
                        totals.dropped += d.dropped;
                        verdicts.push((id, verdict_of(&links[slot], &self.cfg)));
                    }
                }
                Some(fl) => {
                    for (done, &(seq, id, s)) in items.iter().enumerate() {
                        if boom == Some(done) {
                            panic!("armed chaos panic (shard {shard}, batch {batch})");
                        }
                        let slot = id as usize / n_shards;
                        let cfg = &self.cfg;
                        let mut deliver = |smp: MonitorSample| {
                            let up = links[slot].push(&smp, cfg);
                            // One predictable single-byte test per delivery,
                            // untaken on quiet samples.
                            if up.noteworthy {
                                trace_update(fl, shard as u32, id, up, &links[slot]);
                            }
                        };
                        if gates[slot].in_order(seq) {
                            // Clean in-order arrival — the steady state.
                            // `admit` re-checks the same two words right
                            // here with no store in between, so the
                            // optimizer folds the branch away and the
                            // constant delta never materializes: no
                            // per-item delta inspection on the fast path.
                            let d =
                                gates[slot].admit(seq, s, cfg.reorder_window, &mut deliver);
                            debug_assert_eq!(d.delivered, 1);
                            totals.delivered += 1;
                        } else {
                            let d =
                                gates[slot].admit(seq, s, cfg.reorder_window, &mut deliver);
                            if u64::from(d.duplicates | d.stale | d.reordered) | d.dropped != 0
                            {
                                trace_admit(fl, shard as u32, id, seq, d);
                            }
                            totals.delivered += u64::from(d.delivered);
                            totals.duplicates += u64::from(d.duplicates);
                            totals.stale += u64::from(d.stale);
                            totals.reordered += u64::from(d.reordered);
                            totals.dropped += d.dropped;
                        }
                        verdicts.push((id, verdict_of(&links[slot], &self.cfg)));
                    }
                }
            }
        }
        self.index.publish(shard, &verdicts, &self.ixp_of);
        totals
    }

    /// Restore one shard to its last good checkpoint through the attached
    /// store (quarantining a corrupt blob), or to fresh state without one,
    /// and republish its verdicts so readers see the recovered state.
    fn restore_shard(&self, shard: usize) {
        let store = self.store.lock();
        let mut slab = self.shards[shard].lock();
        let slots = slab.links.len();
        // Recovery token for the trace (mirrors `ShardRecovery` order:
        // 0 restored, 1 missing, 2 stale, 3 corrupt).
        let mut recovery = 1u64;
        let restored = store.as_ref().and_then(|st| {
            let name = shard_blob_name(shard);
            match st.load_blob_checked(&name) {
                BlobStatus::Ok(payload) => match decode_shard_payload(&payload, slots, &self.cfg)
                {
                    Some(pair) => {
                        recovery = 0;
                        Some(pair)
                    }
                    None => {
                        recovery = 3;
                        None
                    }
                },
                BlobStatus::Corrupt => {
                    let _ = st.quarantine_blob(&name);
                    recovery = 3;
                    None
                }
                BlobStatus::Missing => None,
                BlobStatus::Stale => {
                    recovery = 2;
                    None
                }
            }
        });
        match restored {
            Some((links, gates)) => {
                slab.links = links;
                slab.gates = gates;
            }
            None => {
                slab.links = (0..slots).map(|_| LinkState::with_config(&self.cfg)).collect();
                slab.gates = (0..slots).map(|_| SeqGate::new()).collect();
            }
        }
        let n_shards = self.shards.len();
        let verdicts: Vec<(u32, LinkVerdict)> = slab
            .links
            .iter()
            .enumerate()
            .map(|(slot, st)| ((slot * n_shards + shard) as u32, verdict_of(st, &self.cfg)))
            .collect();
        drop(slab);
        drop(store);
        // publish() maintains the elevated aggregates on transitions, so
        // overwriting the shard's verdicts keeps the counters exact — no
        // full rebuild (which would race concurrent publishes) needed.
        self.index.publish(shard, &verdicts, &self.ixp_of);
        if let Some(fl) = self.flight_if_live() {
            Recorder::trace(
                fl.as_ref(),
                TraceEvent::new(
                    TraceKind::CheckpointRestore,
                    self.batches.load(Ordering::Relaxed),
                    shard as u32,
                    NO_LINK,
                )
                .a(recovery),
            );
        }
    }

    /// Current service mode. Degraded while any shard is quarantined or
    /// shed/restarted within the last [`MonitorConfig::degraded_hold`]
    /// batches; Healthy otherwise.
    pub fn mode(&self) -> ServiceMode {
        let now = self.batches.load(Ordering::Relaxed);
        for meta in &self.metas {
            if meta.quarantined.load(Ordering::Relaxed) {
                return ServiceMode::Degraded;
            }
            for stamp in [&meta.last_shed_batch, &meta.last_restart_batch] {
                let at = stamp.load(Ordering::Relaxed);
                if at != u64::MAX && now.saturating_sub(at) <= self.cfg.degraded_hold {
                    return ServiceMode::Degraded;
                }
            }
        }
        ServiceMode::Healthy
    }

    /// Sequence-gate counters for one link.
    pub fn seq_stats(&self, id: u32) -> SeqStats {
        let n_shards = self.shards.len();
        let shard = id as usize % n_shards;
        let slot = id as usize / n_shards;
        let slab = self.shards[shard].lock();
        let g = &slab.gates[slot];
        SeqStats {
            next_seq: g.next_seq(),
            duplicates: g.duplicates(),
            stale: g.stale(),
            reordered: g.reordered(),
            dropped: g.dropped(),
            buffered: g.buffered(),
        }
    }

    /// Total supervised shard restarts.
    pub fn shard_restarts(&self) -> u64 {
        self.metas.iter().map(|m| m.restarts.load(Ordering::Relaxed)).sum()
    }

    /// Shards currently quarantined (restart panicked again on replay).
    pub fn quarantined_shards(&self) -> usize {
        self.metas.iter().filter(|m| m.quarantined.load(Ordering::Relaxed)).count()
    }

    /// Publish live gauges: ingest rate, elevated counts (total and per
    /// IXP), shard pressure, and index read QPS. Rates are wall-clock and
    /// volatile; counts are deterministic.
    pub fn publish_gauges<R: Recorder>(&self, rec: &R) {
        if !rec.enabled() {
            return;
        }
        rec.gauge("monitor_links", self.len() as f64);
        rec.gauge("monitor_samples_ingested", self.samples_ingested() as f64);
        rec.gauge("monitor_ingest_samples_per_sec", self.ingest_meter.take_rate());
        rec.gauge("monitor_elevated_links", self.index.elevated_links() as f64);
        rec.gauge("monitor_index_read_qps", self.index.take_read_qps());
        rec.gauge("monitor_index_reads", self.index.reads_total() as f64);
        rec.gauge(
            "monitor_shard_backlog_max",
            self.shard_backlog_max.swap(0, Ordering::Relaxed) as f64,
        );
        rec.gauge(
            "monitor_mode_degraded",
            f64::from(self.mode() == ServiceMode::Degraded),
        );
        rec.gauge("monitor_shed_samples", self.shed_total.load(Ordering::Relaxed) as f64);
        rec.gauge(
            "monitor_rejected_samples",
            self.rejected_total.load(Ordering::Relaxed) as f64,
        );
        rec.gauge(
            "monitor_seq_duplicates",
            self.seq_duplicates.load(Ordering::Relaxed) as f64,
        );
        rec.gauge("monitor_seq_stale", self.seq_stale.load(Ordering::Relaxed) as f64);
        rec.gauge(
            "monitor_seq_reordered",
            self.seq_reordered.load(Ordering::Relaxed) as f64,
        );
        rec.gauge("monitor_seq_dropped", self.seq_dropped.load(Ordering::Relaxed) as f64);
        rec.gauge("monitor_shard_restarts", self.shard_restarts() as f64);
        rec.gauge("monitor_quarantined_shards", self.quarantined_shards() as f64);
        rec.gauge("monitor_trace_dumps", self.trace_dumps() as f64);
        if let Some(fl) = self.flight_if_live() {
            rec.gauge("monitor_trace_events_dropped", fl.dropped() as f64);
        }
        for ixp in 0..self.n_ixps {
            let n = self.index.elevated_at_ixp(ixp);
            if n > 0 {
                rec.gauge(&format!("monitor_elevated_ixp{ixp}"), n as f64);
            }
        }
    }

    /// Write the full shard state (link detectors + sequence gates) through
    /// `store`, one blob per shard. Open the store with
    /// [`monitor_fingerprint`] so layout changes invalidate old blobs. A
    /// failed write names the shard and the blob file instead of panicking
    /// opaquely.
    pub fn checkpoint(&self, store: &CheckpointStore) -> io::Result<()> {
        let fl = self.flight_if_live();
        for (i, shard) in self.shards.iter().enumerate() {
            let (payload, slots) = {
                let slab = shard.lock();
                let mut payload =
                    Vec::with_capacity(8 + slab.links.len() * SHARD_SLOT_LEN);
                payload.extend_from_slice(&(slab.links.len() as u64).to_le_bytes());
                for (st, gate) in slab.links.iter().zip(&slab.gates) {
                    st.encode_into(&mut payload);
                    gate.encode_into(&mut payload);
                }
                (payload, slab.links.len())
            };
            let name = shard_blob_name(i);
            store.store_blob(&name, &payload).map_err(|e| {
                let file = store
                    .blob_file(&name)
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|_| name.clone());
                io::Error::new(
                    e.kind(),
                    format!("monitor checkpoint failed for shard {i} ({file}): {e}"),
                )
            })?;
            if let Some(fl) = fl.as_deref() {
                Recorder::trace(
                    fl,
                    TraceEvent::new(
                        TraceKind::CheckpointWrite,
                        self.batches.load(Ordering::Relaxed),
                        i as u32,
                        NO_LINK,
                    )
                    .a(slots as u64),
                );
            }
        }
        Ok(())
    }

    /// Checkpoint through the attached store (see
    /// [`MonitorService::set_store`]). Returns `Ok(false)` when no store is
    /// attached.
    pub fn checkpoint_attached(&self) -> io::Result<bool> {
        let store = self.store.lock();
        match store.as_ref() {
            None => Ok(false),
            Some(st) => {
                // Same store→shard lock order as restore_shard, so a
                // concurrent supervised recovery cannot deadlock with us.
                self.checkpoint(st)?;
                Ok(true)
            }
        }
    }

    /// Rebuild a service from checkpointed shard blobs, strictly: returns
    /// `None` when any shard is missing, truncated, or from a different
    /// configuration — start fresh in that case. The restored index
    /// republishes every link's verdict, so readers see the pre-kill state
    /// immediately. For partial recovery (rebuild only the damaged shards)
    /// use [`MonitorService::resume_resilient`].
    pub fn resume(
        cfg: MonitorConfig,
        links: &[LinkDesc],
        store: &CheckpointStore,
    ) -> Option<MonitorService> {
        let svc = MonitorService::new(cfg, links);
        let n_shards = svc.shards.len();
        for shard in 0..n_shards {
            let payload = store.load_blob(&shard_blob_name(shard))?;
            let mut slab = svc.shards[shard].lock();
            let (new_links, gates) = decode_shard_payload(&payload, slab.links.len(), &cfg)?;
            slab.links = new_links;
            slab.gates = gates;
            let verdicts: Vec<(u32, LinkVerdict)> = slab
                .links
                .iter()
                .enumerate()
                .map(|(slot, st)| ((slot * n_shards + shard) as u32, verdict_of(st, &cfg)))
                .collect();
            drop(slab);
            svc.index.publish(shard, &verdicts, &svc.ixp_of);
        }
        svc.index.rebuild_aggregates(&svc.ixp_of);
        svc.sync_ingested_from_state();
        Some(svc)
    }

    /// Rebuild a service from checkpointed shard blobs, resiliently: a
    /// damaged blob is quarantined to a `.corrupt` sidecar and its shard
    /// alone rebuilds from scratch; missing or foreign blobs rebuild
    /// without quarantine; intact shards resume **bit-identically**. The
    /// store stays attached for supervised recovery and
    /// [`MonitorService::checkpoint_attached`]. Never fails, never panics —
    /// the report says what happened per shard.
    pub fn resume_resilient(
        cfg: MonitorConfig,
        links: &[LinkDesc],
        store: CheckpointStore,
    ) -> (MonitorService, ResumeReport) {
        let svc = MonitorService::new(cfg, links);
        let n_shards = svc.shards.len();
        let mut report = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let name = shard_blob_name(shard);
            let (decoded, outcome) = match store.load_blob_checked(&name) {
                BlobStatus::Ok(payload) => {
                    let slots = svc.shards[shard].lock().links.len();
                    match decode_shard_payload(&payload, slots, &cfg) {
                        Some(pair) => (Some(pair), ShardRecovery::Restored),
                        // A fingerprint-valid blob that does not decode is
                        // damage the CRC missed (or a layout bug): treat it
                        // exactly like corruption.
                        None => {
                            let _ = store.quarantine_blob(&name);
                            (None, ShardRecovery::RebuiltCorrupt)
                        }
                    }
                }
                BlobStatus::Missing => (None, ShardRecovery::RebuiltMissing),
                BlobStatus::Stale => (None, ShardRecovery::RebuiltStale),
                BlobStatus::Corrupt => {
                    let _ = store.quarantine_blob(&name);
                    (None, ShardRecovery::RebuiltCorrupt)
                }
            };
            report.push(outcome);
            let Some((new_links, gates)) = decoded else {
                continue; // fresh state is already in place
            };
            let mut slab = svc.shards[shard].lock();
            slab.links = new_links;
            slab.gates = gates;
            let verdicts: Vec<(u32, LinkVerdict)> = slab
                .links
                .iter()
                .enumerate()
                .map(|(slot, st)| ((slot * n_shards + shard) as u32, verdict_of(st, &cfg)))
                .collect();
            drop(slab);
            svc.index.publish(shard, &verdicts, &svc.ixp_of);
        }
        svc.index.rebuild_aggregates(&svc.ixp_of);
        svc.sync_ingested_from_state();
        svc.set_store(store);
        (svc, ResumeReport { shards: report })
    }

    /// Recompute the ingested-samples counter from restored link states.
    fn sync_ingested_from_state(&self) {
        let total: u64 = self
            .shards
            .iter()
            .map(|shard| shard.lock().links.iter().map(|s| s.rounds()).sum::<u64>())
            .sum();
        self.ingested.store(total, Ordering::Relaxed);
    }
}

/// Blob name for one shard's checkpoint.
fn shard_blob_name(shard: usize) -> String {
    format!("monitor-shard-{shard:03}")
}

/// Bytes one slot (link state + sequence gate) occupies in a shard blob.
const SHARD_SLOT_LEN: usize = LinkState::ENCODED_LEN + SeqGate::ENCODED_LEN;

/// Decode one shard's checkpoint payload (count-prefixed slots of
/// `LinkState` + `SeqGate`). `None` on any shape mismatch.
fn decode_shard_payload(
    payload: &[u8],
    expected_slots: usize,
    cfg: &MonitorConfig,
) -> Option<(Vec<LinkState>, Vec<SeqGate>)> {
    if payload.len() < 8 {
        return None;
    }
    let count = u64::from_le_bytes(payload[..8].try_into().ok()?) as usize;
    let body = &payload[8..];
    if count != expected_slots || body.len() != count * SHARD_SLOT_LEN {
        return None;
    }
    let mut links = Vec::with_capacity(count);
    let mut gates = Vec::with_capacity(count);
    for slot in 0..count {
        let at = slot * SHARD_SLOT_LEN;
        links.push(LinkState::decode(&body[at..at + LinkState::ENCODED_LEN], cfg)?);
        gates.push(SeqGate::decode(
            &body[at + LinkState::ENCODED_LEN..at + SHARD_SLOT_LEN],
        )?);
    }
    Some((links, gates))
}

fn verdict_of(st: &LinkState, cfg: &MonitorConfig) -> LinkVerdict {
    let det = st.detector();
    LinkVerdict {
        round: st.rounds(),
        elevated: det.is_elevated(),
        baseline_ms: det.baseline(),
        elevation_ms: det.elevation_estimate(),
        health: st.health(cfg),
        alarms: st.alarms(),
        masked_alarms: st.masked_alarms(),
        gaps: det.gap_count(),
        evidence: st.verdict_evidence(),
    }
}

/// Trace the exceptional admission outcomes of one gate call. Steady-state
/// in-order traffic leaves the whole delta zero, so a healthy stream costs
/// four branch tests and writes nothing.
#[cold]
#[inline(never)]
fn trace_admit(fl: &FlightRecorder, shard: u32, link: u32, seq: u64, d: crate::state::AdmitDelta) {
    if d.duplicates > 0 {
        Recorder::trace(
            fl,
            TraceEvent::new(TraceKind::SampleDuplicate, seq, shard, link)
                .a(seq)
                .b(u64::from(d.duplicates)),
        );
    }
    if d.stale > 0 {
        Recorder::trace(fl, TraceEvent::new(TraceKind::SampleStale, seq, shard, link).a(seq));
    }
    if d.reordered > 0 {
        Recorder::trace(
            fl,
            TraceEvent::new(TraceKind::ReorderHealed, seq, shard, link)
                .a(seq)
                .b(u64::from(d.reordered)),
        );
    }
    if d.dropped > 0 {
        Recorder::trace(
            fl,
            TraceEvent::new(TraceKind::SampleDropped, seq, shard, link)
                .a(seq)
                .b(d.dropped),
        );
    }
}

/// Trace what one delivered sample did to its link: online changepoints
/// (with the evidence the mask weighed), mask applications, and health-class
/// transitions. Quiet samples on a stable link trace nothing.
#[cold]
#[inline(never)]
fn trace_update(fl: &FlightRecorder, shard: u32, link: u32, up: LinkUpdate, st: &LinkState) {
    match up.verdict {
        OnlineVerdict::UpshiftAlarm => {
            let ev = st.verdict_evidence();
            Recorder::trace(
                fl,
                TraceEvent::new(TraceKind::OnlineUpshift, up.round, shard, link)
                    .a(ev.path_change_round)
                    .v(ev.level_before_ms),
            );
            if let crate::index::MaskOutcome::Applied { rounds_since_change } = ev.mask {
                Recorder::trace(
                    fl,
                    TraceEvent::new(TraceKind::MaskApplied, up.round, shard, link)
                        .a(ev.path_change_round)
                        .b(rounds_since_change),
                );
            }
        }
        OnlineVerdict::DownshiftAlarm => {
            Recorder::trace(
                fl,
                TraceEvent::new(TraceKind::OnlineDownshift, up.round, shard, link)
                    .v(st.detector().baseline()),
            );
        }
        _ => {}
    }
    if up.health_changed {
        Recorder::trace(
            fl,
            TraceEvent::new(TraceKind::HealthChanged, up.round, shard, link)
                .a(health_token(up.health_before))
                .b(health_token(st.committed_health())),
        );
    }
}

/// Shared mutable-slice handle for the shard workers. Safe use rests on the
/// partition invariant: each batch position is written by exactly one
/// worker (the one that claimed its shard).
struct SliceWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SliceWriter<'_, T> {}
unsafe impl<T: Send> Sync for SliceWriter<'_, T> {}

impl<'a, T> SliceWriter<'a, T> {
    fn new(slice: &'a mut [T]) -> SliceWriter<'a, T> {
        SliceWriter { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: std::marker::PhantomData }
    }
    /// # Safety
    /// Callers must never write the same index from two threads.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn links(n: usize, ixps: u32) -> Vec<LinkDesc> {
        (0..n).map(|i| LinkDesc { ixp: i as u32 % ixps }).collect()
    }

    /// A deterministic per-link sample stream: most links quiet, every 10th
    /// link steps up partway through, every 13th round of link 7 lost.
    fn sample(link: u32, round: u64) -> MonitorSample {
        let h = (link as u64 ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xD134_2543_DE82_EF95);
        let noise = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        let level = if link.is_multiple_of(10) && round >= 120 { 22.0 } else { 2.0 };
        let lost = link % 13 == 7 && round.is_multiple_of(13);
        MonitorSample {
            far_ms: if lost { f64::NAN } else { level + noise },
            path_fp: if lost { 0 } else { 0xFACE },
            far_addr_ok: true,
        }
    }

    fn drive(svc: &MonitorService, n: usize, rounds: std::ops::Range<u64>) {
        for r in rounds {
            let batch: Vec<(u32, MonitorSample)> =
                (0..n as u32).map(|id| (id, sample(id, r))).collect();
            svc.ingest(&batch);
        }
    }

    fn state_digest(svc: &MonitorService) -> Vec<u8> {
        let mut out = Vec::new();
        for shard in &svc.shards {
            let slab = shard.lock();
            for (st, gate) in slab.links.iter().zip(&slab.gates) {
                st.encode_into(&mut out);
                gate.encode_into(&mut out);
            }
        }
        out
    }

    #[test]
    fn thread_count_does_not_change_state() {
        let n = 120;
        let a = MonitorService::new(MonitorConfig { threads: 1, ..MonitorConfig::default() }, &links(n, 4));
        let b = MonitorService::new(MonitorConfig { threads: 4, ..MonitorConfig::default() }, &links(n, 4));
        drive(&a, n, 0..200);
        drive(&b, n, 0..200);
        assert_eq!(state_digest(&a), state_digest(&b));
        assert_eq!(a.index.elevated_links(), b.index.elevated_links());
        for id in 0..n as u32 {
            assert_eq!(a.verdict(id), b.verdict(id));
        }
        // Every 10th link stepped up and must be elevated.
        assert_eq!(a.index.elevated_links(), (n as u64).div_ceil(10));
    }

    #[test]
    fn updates_come_back_in_batch_order() {
        let n = 50;
        let svc = MonitorService::new(MonitorConfig { threads: 3, shards: 5, ..MonitorConfig::default() }, &links(n, 2));
        let batch: Vec<(u32, MonitorSample)> =
            (0..n as u32).map(|id| (id, sample(id, 0))).collect();
        let ups = svc.ingest(&batch);
        assert_eq!(ups.len(), n);
        assert!(ups.iter().all(|u| u.round == 0));
        let ups2 = svc.ingest(&batch);
        assert!(ups2.iter().all(|u| u.round == 1));
    }

    #[test]
    fn kill_resume_is_bit_identical() {
        let n = 90;
        let dir: PathBuf =
            std::env::temp_dir().join(format!("monitor-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for threads in [1usize, 3] {
            let cfg = MonitorConfig { threads, shards: 7, ..MonitorConfig::default() };
            let store =
                CheckpointStore::new(&dir, monitor_fingerprint(&cfg, n)).unwrap();
            // Straight-through run.
            let straight = MonitorService::new(cfg, &links(n, 3));
            drive(&straight, n, 0..300);
            // Killed at round 137, resumed, finished.
            let first = MonitorService::new(cfg, &links(n, 3));
            drive(&first, n, 0..137);
            first.checkpoint(&store).unwrap();
            drop(first);
            let resumed = MonitorService::resume(cfg, &links(n, 3), &store)
                .expect("checkpoint must resume");
            assert_eq!(resumed.samples_ingested(), 137 * n as u64);
            drive(&resumed, n, 137..300);
            assert_eq!(state_digest(&straight), state_digest(&resumed), "threads={threads}");
            for id in 0..n as u32 {
                assert_eq!(straight.verdict(id), resumed.verdict(id), "threads={threads}");
            }
            assert_eq!(straight.index.elevated_links(), resumed.index.elevated_links());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn foreign_fingerprint_or_missing_shard_does_not_resume() {
        let n = 20;
        let cfg = MonitorConfig { shards: 3, ..MonitorConfig::default() };
        let dir: PathBuf =
            std::env::temp_dir().join(format!("monitor-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, monitor_fingerprint(&cfg, n)).unwrap();
        assert!(MonitorService::resume(cfg, &links(n, 2), &store).is_none(), "empty dir");
        let svc = MonitorService::new(cfg, &links(n, 2));
        drive(&svc, n, 0..10);
        svc.checkpoint(&store).unwrap();
        // Different config → different fingerprint → miss.
        let other = MonitorConfig { mask_slack: 9, ..cfg };
        let store2 = CheckpointStore::new(&dir, monitor_fingerprint(&other, n)).unwrap();
        assert!(MonitorService::resume(other, &links(n, 2), &store2).is_none());
        // Delete one shard blob → miss.
        std::fs::remove_file(dir.join("blob-monitor-shard-001.blob")).unwrap();
        assert!(MonitorService::resume(cfg, &links(n, 2), &store).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Digest of link states only (gate counters excluded), for comparing
    /// the raw and sequenced paths, which drive gates differently.
    fn links_digest(svc: &MonitorService) -> Vec<u8> {
        let mut out = Vec::new();
        for shard in &svc.shards {
            for st in shard.lock().links.iter() {
                st.encode_into(&mut out);
            }
        }
        out
    }

    fn drive_seq(svc: &MonitorService, n: usize, rounds: std::ops::Range<u64>) -> IngestReport {
        let mut last = IngestReport {
            accepted: 0,
            delivered: 0,
            rejected: 0,
            shed: 0,
            duplicates: 0,
            stale: 0,
            reordered: 0,
            dropped: 0,
            restarts: 0,
            mode: ServiceMode::Healthy,
        };
        for r in rounds {
            let batch: Vec<(u32, u64, MonitorSample)> =
                (0..n as u32).map(|id| (id, r, sample(id, r))).collect();
            last = svc.ingest_sequenced(&batch);
        }
        last
    }

    #[test]
    fn sequenced_in_order_matches_raw_path() {
        let n = 80;
        let cfg = MonitorConfig::default();
        let raw = MonitorService::new(cfg, &links(n, 3));
        let seq = MonitorService::new(cfg, &links(n, 3));
        drive(&raw, n, 0..200);
        let report = drive_seq(&seq, n, 0..200);
        assert_eq!(links_digest(&raw), links_digest(&seq));
        for id in 0..n as u32 {
            assert_eq!(raw.verdict(id), seq.verdict(id));
        }
        assert_eq!(report.delivered, n as u64);
        assert_eq!(report.mode, ServiceMode::Healthy);
        assert_eq!(seq.samples_ingested(), 200 * n as u64);
    }

    #[test]
    fn sequenced_reorder_storm_heals_and_is_thread_invariant() {
        let n = 60;
        // Swap adjacent rounds pairwise per link: 1,0,3,2,... well within
        // the window — every sample must be healed into order.
        let scrambled = |svc: &MonitorService| {
            for pair in 0..100u64 {
                for r in [pair * 2 + 1, pair * 2] {
                    let batch: Vec<(u32, u64, MonitorSample)> =
                        (0..n as u32).map(|id| (id, r, sample(id, r))).collect();
                    svc.ingest_sequenced(&batch);
                }
            }
        };
        let inorder = MonitorService::new(MonitorConfig::default(), &links(n, 3));
        drive_seq(&inorder, n, 0..200);
        for threads in [1usize, 3] {
            let cfg = MonitorConfig { threads, ..MonitorConfig::default() };
            let svc = MonitorService::new(cfg, &links(n, 3));
            scrambled(&svc);
            assert_eq!(links_digest(&inorder), links_digest(&svc), "threads={threads}");
            let st = svc.seq_stats(0);
            assert_eq!(st.next_seq, 200);
            assert!(st.reordered > 0);
            assert_eq!(st.dropped, 0);
        }
    }

    #[test]
    fn duplicates_and_replays_never_reach_detectors() {
        let n = 40;
        let clean = MonitorService::new(MonitorConfig::default(), &links(n, 2));
        drive_seq(&clean, n, 0..150);
        let noisy = MonitorService::new(MonitorConfig::default(), &links(n, 2));
        for r in 0..150u64 {
            let mut batch: Vec<(u32, u64, MonitorSample)> =
                (0..n as u32).map(|id| (id, r, sample(id, r))).collect();
            // Re-send the previous round for every link (duplicate), plus
            // an ancient replay every 10 rounds.
            if r > 0 {
                batch.extend(
                    (0..n as u32).map(|id| (id, r - 1, sample(id, r - 1))),
                );
            }
            if r.is_multiple_of(10) && r > 20 {
                batch.push((0, 1, sample(0, 1)));
            }
            noisy.ingest_sequenced(&batch);
        }
        assert_eq!(links_digest(&clean), links_digest(&noisy));
        let st = noisy.seq_stats(0);
        assert!(st.duplicates + st.stale > 140, "{st:?}");
    }

    #[test]
    fn shedding_is_deterministic_and_thread_invariant() {
        let n = 96;
        let mk = |threads| {
            MonitorConfig {
                threads,
                shards: 4,
                max_shard_batch: 10,
                ..MonitorConfig::default()
            }
        };
        let run = |threads| {
            let svc = MonitorService::new(mk(threads), &links(n, 3));
            let mut reports = Vec::new();
            for r in 0..40u64 {
                let batch: Vec<(u32, u64, MonitorSample)> =
                    (0..n as u32).map(|id| (id, r, sample(id, r))).collect();
                reports.push(svc.ingest_sequenced(&batch));
            }
            (links_digest(&svc), reports)
        };
        let (da, ra) = run(1);
        let (db, rb) = run(4);
        assert_eq!(da, db);
        assert_eq!(ra, rb);
        // 96 links over 4 shards = 24 demand per shard, capped at 10.
        assert_eq!(ra[0].shed, 4 * 14);
        assert_eq!(ra[0].accepted, 40);
        assert_eq!(ra[0].mode, ServiceMode::Degraded);
    }

    #[test]
    fn degraded_mode_clears_after_hold() {
        let n = 16;
        let cfg = MonitorConfig {
            shards: 2,
            max_shard_batch: 4,
            degraded_hold: 3,
            ..MonitorConfig::default()
        };
        let svc = MonitorService::new(cfg, &links(n, 2));
        drive_seq(&svc, n, 0..1); // 8 per shard > 4: sheds
        assert_eq!(svc.mode(), ServiceMode::Degraded);
        // Small batches below the cap: pressure is gone, hold decays.
        for r in 1..6u64 {
            let batch: Vec<(u32, u64, MonitorSample)> =
                (0..4u32).map(|id| (id, r, sample(id, r))).collect();
            svc.ingest_sequenced(&batch);
        }
        assert_eq!(svc.mode(), ServiceMode::Healthy);
    }

    #[test]
    fn rejected_inputs_are_counted_not_fatal() {
        let n = 10;
        let svc = MonitorService::new(MonitorConfig::default(), &links(n, 2));
        let batch: Vec<(u32, u64, MonitorSample)> = vec![
            (0, 0, sample(0, 0)),
            (999, 0, sample(1, 0)),      // unknown link
            (1, u64::MAX, sample(1, 0)), // reserved sequence
        ];
        let report = svc.ingest_sequenced(&batch);
        assert_eq!(report.rejected, 2);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.delivered, 1);
    }

    #[test]
    fn armed_panic_recovers_from_checkpoint_and_replays() {
        let n = 60;
        let dir: PathBuf =
            std::env::temp_dir().join(format!("monitor-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for threads in [1usize, 3] {
            let cfg = MonitorConfig { threads, shards: 5, ..MonitorConfig::default() };
            let straight = MonitorService::new(cfg, &links(n, 3));
            drive_seq(&straight, n, 0..120);

            let svc = MonitorService::new(cfg, &links(n, 3));
            let store = CheckpointStore::new(&dir, monitor_fingerprint(&cfg, n)).unwrap();
            svc.set_store(store);
            drive_seq(&svc, n, 0..80);
            // Checkpoint right before the faulty batch: the replay restores
            // it and re-runs batch 80, so nothing diverges.
            assert!(svc.checkpoint_attached().unwrap());
            svc.arm_panic(2, svc.batches_ingested(), 3);
            let report = drive_seq(&svc, n, 80..81);
            assert_eq!(report.restarts, 1, "threads={threads}");
            assert_eq!(report.mode, ServiceMode::Degraded);
            assert_eq!(svc.quarantined_shards(), 0);
            drive_seq(&svc, n, 81..120);
            assert_eq!(state_digest(&straight), state_digest(&svc), "threads={threads}");
            for id in 0..n as u32 {
                assert_eq!(straight.verdict(id), svc.verdict(id), "threads={threads}");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn double_panic_quarantines_until_next_good_pass() {
        let n = 30;
        let cfg = MonitorConfig { shards: 3, ..MonitorConfig::default() };
        let svc = MonitorService::new(cfg, &links(n, 2));
        drive_seq(&svc, n, 0..10);
        // Two armed panics for the same (shard, batch): the replay hits the
        // second one and the shard quarantines.
        let b = svc.batches_ingested();
        svc.arm_panic(1, b, 2);
        svc.arm_panic(1, b, 4);
        let report = drive_seq(&svc, n, 10..11);
        assert_eq!(report.restarts, 1);
        assert_eq!(svc.quarantined_shards(), 1);
        assert_eq!(svc.mode(), ServiceMode::Degraded);
        // Unaffected shards kept publishing: their links saw round 10.
        assert_eq!(svc.verdict(0).round, 11);
        // Next clean pass clears the quarantine.
        drive_seq(&svc, n, 11..12);
        assert_eq!(svc.quarantined_shards(), 0);
    }

    #[test]
    fn resume_resilient_quarantines_corrupt_shard_only() {
        let n = 45;
        let cfg = MonitorConfig { shards: 3, ..MonitorConfig::default() };
        let dir: PathBuf =
            std::env::temp_dir().join(format!("monitor-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, monitor_fingerprint(&cfg, n)).unwrap();
        let first = MonitorService::new(cfg, &links(n, 3));
        drive_seq(&first, n, 0..90);
        first.checkpoint(&store).unwrap();
        // Flip the CRC byte of shard 1's blob.
        let blob = dir.join("blob-monitor-shard-001.blob");
        let mut bytes = std::fs::read(&blob).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&blob, &bytes).unwrap();
        // Strict resume refuses; resilient resume rebuilds shard 1 alone.
        assert!(MonitorService::resume(cfg, &links(n, 3), &store).is_none());
        let store2 = CheckpointStore::new(&dir, monitor_fingerprint(&cfg, n)).unwrap();
        let (svc, report) = MonitorService::resume_resilient(cfg, &links(n, 3), store2);
        assert_eq!(
            report.shards,
            vec![
                ShardRecovery::Restored,
                ShardRecovery::RebuiltCorrupt,
                ShardRecovery::Restored
            ]
        );
        assert_eq!(report.rebuilt(), 1);
        assert!(dir.join("blob-monitor-shard-001.blob.corrupt").exists());
        assert!(!blob.exists(), "corrupt blob must be moved aside");
        for id in 0..n as u32 {
            if id % 3 == 1 {
                assert_eq!(svc.verdict(id).round, 0, "shard 1 rebuilt from scratch");
            } else {
                assert_eq!(svc.verdict(id), first.verdict(id), "unaffected link {id}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_and_gauges_during_ingest() {
        use std::sync::atomic::AtomicBool;
        let n = 200;
        let svc = std::sync::Arc::new(MonitorService::new(
            MonitorConfig { threads: 2, ..MonitorConfig::default() },
            &links(n, 4),
        ));
        let stop = AtomicBool::new(false);
        std::thread::scope(|sc| {
            let reader_svc = std::sync::Arc::clone(&svc);
            let stop_ref = &stop;
            let reader = sc.spawn(move || {
                let mut reads = 0u64;
                while !stop_ref.load(Ordering::Relaxed) {
                    for id in (0..n as u32).step_by(7) {
                        let _ = reader_svc.verdict(id);
                        reads += 1;
                    }
                }
                reads
            });
            drive(&svc, n, 0..150);
            stop.store(true, Ordering::Relaxed);
            let reads = reader.join().unwrap();
            assert!(reads > 0, "reader must have made progress during ingest");
        });
        let reg = ixp_obs::MetricsRegistry::new();
        svc.publish_gauges(&reg);
        let sheet = reg.snapshot();
        assert_eq!(sheet.gauges["monitor_links"], n as f64);
        assert_eq!(sheet.gauges["monitor_samples_ingested"], (150 * n) as f64);
        assert!(sheet.gauges["monitor_elevated_links"] >= 1.0);
        assert!(sheet.gauges.contains_key("monitor_index_read_qps"));
        assert!(sheet.gauges["monitor_shard_backlog_max"] >= 1.0);
    }
}
