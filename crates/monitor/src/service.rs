//! The resident monitor service: shard layout, batched ingestion, live
//! gauges, and checkpoint/resume.
//!
//! ## Shard layout and memory model
//!
//! Link states live in `shards` mutex-guarded slabs (link `id` → shard
//! `id % shards`, slot `id / shards`, the same striding as the verdict
//! index). A batch of samples is partitioned per shard in arrival order,
//! then each shard is processed independently — sequentially or by a
//! work-claiming thread pool — and its verdicts published to the index
//! under one write lock per shard per batch. Because the partition is
//! stable and shards share nothing, per-link sample order is preserved at
//! any thread count, and the resulting states are **bit-identical** whether
//! one thread or eight did the work.
//!
//! Steady-state memory is O(links × window): each link holds ~200 bytes of
//! detector + health-window state, and nothing retains an RTT series.
//!
//! ## Checkpoint/resume
//!
//! [`MonitorService::checkpoint`] writes one fingerprint-bound blob per
//! shard through [`CheckpointStore::store_blob`]; [`MonitorService::resume`]
//! rebuilds every link state and republishes verdicts. The fingerprint
//! mixes the full monitor configuration and link count, so a layout or
//! config change makes old blobs a miss (rebuild from scratch), never a
//! corrupt resume. Continuing the stream after resume is bit-identical to
//! never having stopped — tested at 1 and 3 ingest threads.

use crate::index::{LinkVerdict, VerdictIndex};
use crate::state::{LinkState, LinkUpdate, MonitorSample};
use ixp_chgpt::OnlineConfig;
use ixp_obs::{RateMeter, Recorder};
use ixp_simnet::rng::mix;
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use tslp_core::CheckpointStore;

/// Full configuration of the resident monitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Online detector configuration (shared by every link).
    pub online: OnlineConfig,
    /// Number of state/index shards.
    pub shards: usize,
    /// Ingest worker threads (0 = all cores, 1 = sequential).
    pub threads: usize,
    /// A path change at round `c` masks upshifts in `[c, c + mask_slack]`.
    pub mask_slack: u64,
    /// Tumbling health-window length in rounds (288 = one day at 5 min).
    pub window_rounds: u64,
    /// Loss runs at least this long count as gap evidence (not scattered
    /// loss). 6 rounds = the paper's 30-minute minimum on the 5-min grid.
    pub min_gap_rounds: u64,
    /// Scattered loss above this fraction reads as rate limiting.
    pub max_scattered_loss: f64,
    /// Address consistency below this reads as AddrUnstable.
    pub min_addr_consistency: f64,
    /// Window validity below this reads as Silent.
    pub silent_validity: f64,
    /// An open loss run covering this fraction of a window reads as Silent.
    pub silent_tail_fraction: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            online: OnlineConfig::default(),
            shards: 16,
            threads: 1,
            mask_slack: 6,
            window_rounds: 288,
            min_gap_rounds: 6,
            max_scattered_loss: 0.25,
            min_addr_consistency: 0.90,
            silent_validity: 0.05,
            silent_tail_fraction: 0.35,
        }
    }
}

/// Static description of one monitored link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDesc {
    /// IXP the link belongs to (dense id; drives per-IXP aggregates).
    pub ixp: u32,
}

/// Fingerprint binding checkpoints to one monitor deployment: configuration
/// (detector, shard layout, health thresholds) and link count. Thread count
/// is deliberately excluded — results do not depend on it.
pub fn monitor_fingerprint(cfg: &MonitorConfig, n_links: usize) -> u64 {
    mix(&[
        0x004D_4F4E_4954_4F52, // "MONITOR"
        cfg.online.kappa.to_bits(),
        cfg.online.h.to_bits(),
        cfg.online.warmup as u64,
        cfg.online.baseline_gain.to_bits(),
        cfg.shards as u64,
        cfg.mask_slack,
        cfg.window_rounds,
        cfg.min_gap_rounds,
        cfg.max_scattered_loss.to_bits(),
        cfg.min_addr_consistency.to_bits(),
        cfg.silent_validity.to_bits(),
        cfg.silent_tail_fraction.to_bits(),
        n_links as u64,
    ])
}

/// The resident monitoring service. See the module docs for the layout.
pub struct MonitorService {
    cfg: MonitorConfig,
    /// Per-link IXP ids (index = link id).
    ixp_of: Vec<u32>,
    n_ixps: usize,
    shards: Vec<Mutex<Vec<LinkState>>>,
    index: VerdictIndex,
    ingest_meter: RateMeter,
    ingested: AtomicU64,
    /// Largest per-shard batch observed since the last gauge publication —
    /// the "how uneven is shard pressure" signal.
    shard_backlog_max: AtomicU64,
}

impl MonitorService {
    /// A fresh service monitoring `links`.
    pub fn new(cfg: MonitorConfig, links: &[LinkDesc]) -> MonitorService {
        let shards = cfg.shards.max(1);
        let n = links.len();
        let ixp_of: Vec<u32> = links.iter().map(|l| l.ixp).collect();
        let n_ixps = ixp_of.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut slabs = Vec::with_capacity(shards);
        for s in 0..shards {
            let slots = n / shards + usize::from(s < n % shards);
            slabs.push(Mutex::new((0..slots).map(|_| LinkState::with_config(&cfg)).collect()));
        }
        MonitorService {
            cfg,
            ixp_of,
            n_ixps,
            shards: slabs,
            index: VerdictIndex::new(n, shards, n_ixps),
            ingest_meter: RateMeter::new(),
            ingested: AtomicU64::new(0),
            shard_backlog_max: AtomicU64::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Number of monitored links.
    pub fn len(&self) -> usize {
        self.ixp_of.len()
    }

    /// True when no links are monitored.
    pub fn is_empty(&self) -> bool {
        self.ixp_of.is_empty()
    }

    /// The concurrent verdict index (share with reader threads).
    pub fn index(&self) -> &VerdictIndex {
        &self.index
    }

    /// Current verdict for one link (convenience passthrough).
    pub fn verdict(&self, id: u32) -> LinkVerdict {
        self.index.verdict(id)
    }

    /// Total samples ingested.
    pub fn samples_ingested(&self) -> u64 {
        self.ingested.load(Ordering::Relaxed)
    }

    /// Ingest a batch of `(link id, sample)` pairs. Per-link sample order
    /// within the batch is preserved; the resulting state is bit-identical
    /// at any [`MonitorConfig::threads`] setting. Returns the per-sample
    /// updates in batch order (callers that only want the index ignore it).
    pub fn ingest(&self, batch: &[(u32, MonitorSample)]) -> Vec<LinkUpdate> {
        let n_shards = self.shards.len();
        // Stable partition by shard: arrival order preserved per shard,
        // therefore per link.
        let mut per_shard: Vec<Vec<(usize, u32, MonitorSample)>> = vec![Vec::new(); n_shards];
        for (pos, &(id, s)) in batch.iter().enumerate() {
            assert!((id as usize) < self.ixp_of.len(), "unknown link id {id}");
            per_shard[id as usize % n_shards].push((pos, id, s));
        }
        let backlog = per_shard.iter().map(|v| v.len() as u64).max().unwrap_or(0);
        self.shard_backlog_max.fetch_max(backlog, Ordering::Relaxed);

        let mut updates = vec![
            LinkUpdate { round: 0, verdict: ixp_chgpt::OnlineVerdict::Quiet, masked: false };
            batch.len()
        ];
        let threads = tslp_core::resolve_threads(self.cfg.threads).min(n_shards.max(1));
        if threads <= 1 {
            for (shard, items) in per_shard.iter().enumerate() {
                self.ingest_shard(shard, items, &mut updates);
            }
        } else {
            let next = AtomicUsize::new(0);
            let slices = SliceWriter::new(&mut updates);
            std::thread::scope(|sc| {
                for _ in 0..threads {
                    sc.spawn(|| loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= n_shards {
                            break;
                        }
                        // SAFETY (by construction): each batch position
                        // appears in exactly one shard's item list, so no
                        // two workers write the same updates slot.
                        self.ingest_shard(shard, &per_shard[shard], unsafe { slices.get() });
                    });
                }
            });
        }
        self.ingest_meter.mark(batch.len() as u64);
        self.ingested.fetch_add(batch.len() as u64, Ordering::Relaxed);
        updates
    }

    fn ingest_shard(
        &self,
        shard: usize,
        items: &[(usize, u32, MonitorSample)],
        updates: &mut [LinkUpdate],
    ) {
        if items.is_empty() {
            return;
        }
        let n_shards = self.shards.len();
        let mut verdicts = Vec::with_capacity(items.len());
        {
            let mut states = self.shards[shard].lock();
            for &(pos, id, ref s) in items {
                let slot = id as usize / n_shards;
                let up = states[slot].push(s, &self.cfg);
                updates[pos] = up;
                verdicts.push((id, verdict_of(&states[slot], &self.cfg)));
            }
        }
        // Publish outside the state lock: readers contend only with the
        // index write, never with detector math.
        self.index.publish(shard, &verdicts, &self.ixp_of);
    }

    /// Publish live gauges: ingest rate, elevated counts (total and per
    /// IXP), shard pressure, and index read QPS. Rates are wall-clock and
    /// volatile; counts are deterministic.
    pub fn publish_gauges<R: Recorder>(&self, rec: &R) {
        if !rec.enabled() {
            return;
        }
        rec.gauge("monitor_links", self.len() as f64);
        rec.gauge("monitor_samples_ingested", self.samples_ingested() as f64);
        rec.gauge("monitor_ingest_samples_per_sec", self.ingest_meter.take_rate());
        rec.gauge("monitor_elevated_links", self.index.elevated_links() as f64);
        rec.gauge("monitor_index_read_qps", self.index.take_read_qps());
        rec.gauge("monitor_index_reads", self.index.reads_total() as f64);
        rec.gauge(
            "monitor_shard_backlog_max",
            self.shard_backlog_max.swap(0, Ordering::Relaxed) as f64,
        );
        for ixp in 0..self.n_ixps {
            let n = self.index.elevated_at_ixp(ixp);
            if n > 0 {
                rec.gauge(&format!("monitor_elevated_ixp{ixp}"), n as f64);
            }
        }
    }

    /// Write the full shard state through `store` (one blob per shard).
    /// Open the store with [`monitor_fingerprint`] so layout changes
    /// invalidate old blobs.
    pub fn checkpoint(&self, store: &CheckpointStore) -> io::Result<()> {
        for (i, shard) in self.shards.iter().enumerate() {
            let states = shard.lock();
            let mut payload = Vec::with_capacity(8 + states.len() * LinkState::ENCODED_LEN);
            payload.extend_from_slice(&(states.len() as u64).to_le_bytes());
            for st in states.iter() {
                st.encode_into(&mut payload);
            }
            store.store_blob(&format!("monitor-shard-{i:03}"), &payload)?;
        }
        Ok(())
    }

    /// Rebuild a service from checkpointed shard blobs. Returns `None` when
    /// any shard is missing, truncated, or from a different configuration —
    /// start fresh in that case. The restored index republishes every
    /// link's verdict, so readers see the pre-kill state immediately.
    pub fn resume(
        cfg: MonitorConfig,
        links: &[LinkDesc],
        store: &CheckpointStore,
    ) -> Option<MonitorService> {
        let svc = MonitorService::new(cfg, links);
        let n_shards = svc.shards.len();
        for shard in 0..n_shards {
            let payload = store.load_blob(&format!("monitor-shard-{shard:03}"))?;
            if payload.len() < 8 {
                return None;
            }
            let count = u64::from_le_bytes(payload[..8].try_into().ok()?) as usize;
            let body = &payload[8..];
            let mut states = svc.shards[shard].lock();
            if count != states.len() || body.len() != count * LinkState::ENCODED_LEN {
                return None;
            }
            let mut verdicts = Vec::with_capacity(count);
            for (slot, st) in states.iter_mut().enumerate() {
                let at = slot * LinkState::ENCODED_LEN;
                *st = LinkState::decode(&body[at..at + LinkState::ENCODED_LEN], &cfg)?;
                let id = (slot * n_shards + shard) as u32;
                verdicts.push((id, verdict_of(st, &cfg)));
            }
            drop(states);
            svc.index.publish(shard, &verdicts, &svc.ixp_of);
        }
        svc.index.rebuild_aggregates(&svc.ixp_of);
        let total: u64 = {
            let mut t = 0;
            for shard in &svc.shards {
                t += shard.lock().iter().map(|s| s.rounds()).sum::<u64>();
            }
            t
        };
        svc.ingested.store(total, Ordering::Relaxed);
        Some(svc)
    }
}

fn verdict_of(st: &LinkState, cfg: &MonitorConfig) -> LinkVerdict {
    let det = st.detector();
    LinkVerdict {
        round: st.rounds(),
        elevated: det.is_elevated(),
        baseline_ms: det.baseline(),
        elevation_ms: det.elevation_estimate(),
        health: st.health(cfg),
        alarms: st.alarms(),
        masked_alarms: st.masked_alarms(),
        gaps: det.gap_count(),
    }
}

/// Shared mutable-slice handle for the shard workers. Safe use rests on the
/// partition invariant: each batch position is written by exactly one
/// worker (the one that claimed its shard).
struct SliceWriter<'a> {
    ptr: *mut LinkUpdate,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [LinkUpdate]>,
}

unsafe impl Send for SliceWriter<'_> {}
unsafe impl Sync for SliceWriter<'_> {}

impl<'a> SliceWriter<'a> {
    fn new(slice: &'a mut [LinkUpdate]) -> SliceWriter<'a> {
        SliceWriter { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: std::marker::PhantomData }
    }
    /// # Safety
    /// Callers must never write the same index from two threads.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self) -> &mut [LinkUpdate] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn links(n: usize, ixps: u32) -> Vec<LinkDesc> {
        (0..n).map(|i| LinkDesc { ixp: i as u32 % ixps }).collect()
    }

    /// A deterministic per-link sample stream: most links quiet, every 10th
    /// link steps up partway through, every 13th round of link 7 lost.
    fn sample(link: u32, round: u64) -> MonitorSample {
        let h = (link as u64 ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xD134_2543_DE82_EF95);
        let noise = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        let level = if link.is_multiple_of(10) && round >= 120 { 22.0 } else { 2.0 };
        let lost = link % 13 == 7 && round.is_multiple_of(13);
        MonitorSample {
            far_ms: if lost { f64::NAN } else { level + noise },
            path_fp: if lost { 0 } else { 0xFACE },
            far_addr_ok: true,
        }
    }

    fn drive(svc: &MonitorService, n: usize, rounds: std::ops::Range<u64>) {
        for r in rounds {
            let batch: Vec<(u32, MonitorSample)> =
                (0..n as u32).map(|id| (id, sample(id, r))).collect();
            svc.ingest(&batch);
        }
    }

    fn state_digest(svc: &MonitorService) -> Vec<u8> {
        let mut out = Vec::new();
        for shard in &svc.shards {
            for st in shard.lock().iter() {
                st.encode_into(&mut out);
            }
        }
        out
    }

    #[test]
    fn thread_count_does_not_change_state() {
        let n = 120;
        let a = MonitorService::new(MonitorConfig { threads: 1, ..MonitorConfig::default() }, &links(n, 4));
        let b = MonitorService::new(MonitorConfig { threads: 4, ..MonitorConfig::default() }, &links(n, 4));
        drive(&a, n, 0..200);
        drive(&b, n, 0..200);
        assert_eq!(state_digest(&a), state_digest(&b));
        assert_eq!(a.index.elevated_links(), b.index.elevated_links());
        for id in 0..n as u32 {
            assert_eq!(a.verdict(id), b.verdict(id));
        }
        // Every 10th link stepped up and must be elevated.
        assert_eq!(a.index.elevated_links(), (n as u64).div_ceil(10));
    }

    #[test]
    fn updates_come_back_in_batch_order() {
        let n = 50;
        let svc = MonitorService::new(MonitorConfig { threads: 3, shards: 5, ..MonitorConfig::default() }, &links(n, 2));
        let batch: Vec<(u32, MonitorSample)> =
            (0..n as u32).map(|id| (id, sample(id, 0))).collect();
        let ups = svc.ingest(&batch);
        assert_eq!(ups.len(), n);
        assert!(ups.iter().all(|u| u.round == 0));
        let ups2 = svc.ingest(&batch);
        assert!(ups2.iter().all(|u| u.round == 1));
    }

    #[test]
    fn kill_resume_is_bit_identical() {
        let n = 90;
        let dir: PathBuf =
            std::env::temp_dir().join(format!("monitor-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for threads in [1usize, 3] {
            let cfg = MonitorConfig { threads, shards: 7, ..MonitorConfig::default() };
            let store =
                CheckpointStore::new(&dir, monitor_fingerprint(&cfg, n)).unwrap();
            // Straight-through run.
            let straight = MonitorService::new(cfg, &links(n, 3));
            drive(&straight, n, 0..300);
            // Killed at round 137, resumed, finished.
            let first = MonitorService::new(cfg, &links(n, 3));
            drive(&first, n, 0..137);
            first.checkpoint(&store).unwrap();
            drop(first);
            let resumed = MonitorService::resume(cfg, &links(n, 3), &store)
                .expect("checkpoint must resume");
            assert_eq!(resumed.samples_ingested(), 137 * n as u64);
            drive(&resumed, n, 137..300);
            assert_eq!(state_digest(&straight), state_digest(&resumed), "threads={threads}");
            for id in 0..n as u32 {
                assert_eq!(straight.verdict(id), resumed.verdict(id), "threads={threads}");
            }
            assert_eq!(straight.index.elevated_links(), resumed.index.elevated_links());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn foreign_fingerprint_or_missing_shard_does_not_resume() {
        let n = 20;
        let cfg = MonitorConfig { shards: 3, ..MonitorConfig::default() };
        let dir: PathBuf =
            std::env::temp_dir().join(format!("monitor-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, monitor_fingerprint(&cfg, n)).unwrap();
        assert!(MonitorService::resume(cfg, &links(n, 2), &store).is_none(), "empty dir");
        let svc = MonitorService::new(cfg, &links(n, 2));
        drive(&svc, n, 0..10);
        svc.checkpoint(&store).unwrap();
        // Different config → different fingerprint → miss.
        let other = MonitorConfig { mask_slack: 9, ..cfg };
        let store2 = CheckpointStore::new(&dir, monitor_fingerprint(&other, n)).unwrap();
        assert!(MonitorService::resume(other, &links(n, 2), &store2).is_none());
        // Delete one shard blob → miss.
        std::fs::remove_file(dir.join("blob-monitor-shard-001.blob")).unwrap();
        assert!(MonitorService::resume(cfg, &links(n, 2), &store).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_and_gauges_during_ingest() {
        use std::sync::atomic::AtomicBool;
        let n = 200;
        let svc = std::sync::Arc::new(MonitorService::new(
            MonitorConfig { threads: 2, ..MonitorConfig::default() },
            &links(n, 4),
        ));
        let stop = AtomicBool::new(false);
        std::thread::scope(|sc| {
            let reader_svc = std::sync::Arc::clone(&svc);
            let stop_ref = &stop;
            let reader = sc.spawn(move || {
                let mut reads = 0u64;
                while !stop_ref.load(Ordering::Relaxed) {
                    for id in (0..n as u32).step_by(7) {
                        let _ = reader_svc.verdict(id);
                        reads += 1;
                    }
                }
                reads
            });
            drive(&svc, n, 0..150);
            stop.store(true, Ordering::Relaxed);
            let reads = reader.join().unwrap();
            assert!(reads > 0, "reader must have made progress during ingest");
        });
        let reg = ixp_obs::MetricsRegistry::new();
        svc.publish_gauges(&reg);
        let sheet = reg.snapshot();
        assert_eq!(sheet.gauges["monitor_links"], n as f64);
        assert_eq!(sheet.gauges["monitor_samples_ingested"], (150 * n) as f64);
        assert!(sheet.gauges["monitor_elevated_links"] >= 1.0);
        assert!(sheet.gauges.contains_key("monitor_index_read_qps"));
        assert!(sheet.gauges["monitor_shard_backlog_max"] >= 1.0);
    }
}
