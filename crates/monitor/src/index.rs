//! The concurrent verdict index: sharded `RwLock` slabs of published
//! per-link verdicts, plus lock-free elevated-link aggregates.
//!
//! Read-path consistency story: a reader always sees a **complete** verdict
//! for any link (verdicts are published whole, under the shard's write
//! lock), from the most recently *published* round for that shard. Readers
//! of different shards may observe different rounds — the index trades
//! cross-shard snapshot isolation for zero coordination between shards,
//! which is what lets ingestion proceed on shard A while a dashboard drains
//! shard B. The elevated-link aggregates are atomics maintained on
//! publication-time transitions, so a counter read never takes any lock.
//!
//! Layout: link `id` lives in shard `id % shards` at slot `id / shards`.
//! Striding (rather than chunking) spreads adjacent links — which are
//! usually probed in the same batch — across shards, so a batch's write
//! locks interleave instead of convoying on one shard.

use ixp_obs::RateMeter;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use tslp_core::LinkHealth;

/// What the causal path-change mask decided at the link's most recent
/// upshift alarm — kept alongside the verdict so a "why is / isn't this
/// elevated?" question can be answered without replaying the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskOutcome {
    /// No alarm has fired yet, or no path change was on record when it did:
    /// the mask never entered the decision.
    NotConsidered,
    /// The alarm was attributed to a path change `rounds_since_change`
    /// rounds earlier and suppressed from the congestion tally.
    Applied {
        /// Rounds between the path change and the alarm (within the slack).
        rounds_since_change: u64,
    },
    /// A path change was on record but fell outside the slack window, so
    /// the alarm stood as genuine congestion.
    Rejected {
        /// Rounds between the path change and the alarm (beyond the slack).
        rounds_since_change: u64,
    },
}

/// Provenance for a published [`LinkVerdict`]: where the detector last
/// shifted, what it shifted *from*, the path fingerprints straddling the
/// most recent route change, and what the mask did about it. `u64::MAX`
/// round fields mean "never"; fingerprint 0 means "unknown".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VerdictEvidence {
    /// Round of the most recent upshift alarm (`u64::MAX` = never).
    pub change_round: u64,
    /// Detector level estimate just before that shift, milliseconds.
    pub level_before_ms: f64,
    /// Path fingerprint before the most recent route change (0 = none).
    pub fp_before: u64,
    /// Current path fingerprint (0 = unknown).
    pub fp_after: u64,
    /// Round of the most recent route change (`u64::MAX` = never).
    pub path_change_round: u64,
    /// The mask decision at the most recent alarm.
    pub mask: MaskOutcome,
}

impl VerdictEvidence {
    /// Evidence for a link with no history.
    pub fn empty() -> VerdictEvidence {
        VerdictEvidence {
            change_round: u64::MAX,
            level_before_ms: 0.0,
            fp_before: 0,
            fp_after: 0,
            path_change_round: u64::MAX,
            mask: MaskOutcome::NotConsidered,
        }
    }
}

/// The published verdict for one monitored link — everything a reader
/// needs, no lock held while consuming it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkVerdict {
    /// Rounds ingested for this link when the verdict was published.
    pub round: u64,
    /// Is the link inside an elevated (congestion) period right now?
    pub elevated: bool,
    /// Detector baseline estimate, milliseconds.
    pub baseline_ms: f64,
    /// Estimated elevation magnitude, milliseconds (0 when quiet).
    pub elevation_ms: f64,
    /// Current measurement-health label.
    pub health: LinkHealth,
    /// Upshift alarms so far (masked included).
    pub alarms: u64,
    /// Upshift alarms attributed to path changes.
    pub masked_alarms: u64,
    /// Unanswered rounds so far.
    pub gaps: u64,
    /// Why the verdict says what it says.
    pub evidence: VerdictEvidence,
}

impl LinkVerdict {
    /// The verdict of a link nothing has been ingested for.
    pub fn empty() -> LinkVerdict {
        LinkVerdict {
            round: 0,
            elevated: false,
            baseline_ms: 0.0,
            elevation_ms: 0.0,
            health: LinkHealth::Clean,
            alarms: 0,
            masked_alarms: 0,
            gaps: 0,
            evidence: VerdictEvidence::empty(),
        }
    }
}

/// Sharded concurrent verdict store. See the module docs for the layout
/// and consistency contract.
pub struct VerdictIndex {
    shards: Vec<RwLock<Vec<LinkVerdict>>>,
    n_links: usize,
    /// Links currently elevated (maintained on publish transitions).
    elevated: AtomicU64,
    /// Elevated links per IXP (indexed by the service's IXP ids).
    elevated_per_ixp: Vec<AtomicU64>,
    /// Read-side throughput meter (one mark per verdict lookup).
    reads: RateMeter,
}

impl VerdictIndex {
    /// An index for `n_links` links across `shards` shards and `n_ixps`
    /// IXP aggregates, all verdicts empty.
    pub fn new(n_links: usize, shards: usize, n_ixps: usize) -> VerdictIndex {
        let shards = shards.max(1);
        let mut slabs = Vec::with_capacity(shards);
        for s in 0..shards {
            let slots = n_links / shards + usize::from(s < n_links % shards);
            slabs.push(RwLock::new(vec![LinkVerdict::empty(); slots]));
        }
        VerdictIndex {
            shards: slabs,
            n_links,
            elevated: AtomicU64::new(0),
            elevated_per_ixp: (0..n_ixps.max(1)).map(|_| AtomicU64::new(0)).collect(),
            reads: RateMeter::new(),
        }
    }

    /// Number of links indexed.
    pub fn len(&self) -> usize {
        self.n_links
    }

    /// True when no links are indexed.
    pub fn is_empty(&self) -> bool {
        self.n_links == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current verdict for link `id`; [`LinkVerdict::empty`] for an unknown
    /// id. Total (never panics): a dashboard poller with a stale link list
    /// gets an empty verdict, not a crash inside the read lock.
    pub fn verdict(&self, id: u32) -> LinkVerdict {
        self.reads.mark(1);
        let shard = id as usize % self.shards.len();
        let slot = id as usize / self.shards.len();
        self.shards[shard].read().get(slot).copied().unwrap_or_else(LinkVerdict::empty)
    }

    /// Links currently elevated (lock-free).
    pub fn elevated_links(&self) -> u64 {
        self.elevated.load(Ordering::Relaxed)
    }

    /// Links currently elevated at one IXP (lock-free); 0 for unknown ids.
    pub fn elevated_at_ixp(&self, ixp: usize) -> u64 {
        self.elevated_per_ixp.get(ixp).map_or(0, |a| a.load(Ordering::Relaxed))
    }

    /// Total verdict lookups served.
    pub fn reads_total(&self) -> u64 {
        self.reads.total()
    }

    /// Read throughput (lookups/s) since the last call, for live gauges.
    pub fn take_read_qps(&self) -> f64 {
        self.reads.take_rate()
    }

    /// Publish a batch of verdicts for one shard. `updates` must all belong
    /// to shard `shard` (`id % shards == shard`); the write lock is taken
    /// once for the whole batch. `ixp_of` maps link id → IXP id for the
    /// aggregate maintenance.
    ///
    /// Never panics: out-of-range ids are skipped (debug-asserted), so a
    /// buggy or recovering producer cannot poison the write path. The locks
    /// are `parking_lot`, which does not poison on panic either way — a
    /// worker that dies mid-publish releases the lock on unwind and readers
    /// see the verdicts written so far, each one whole.
    pub fn publish(&self, shard: usize, updates: &[(u32, LinkVerdict)], ixp_of: &[u32]) {
        if updates.is_empty() || shard >= self.shards.len() {
            debug_assert!(updates.is_empty() || shard < self.shards.len());
            return;
        }
        let mut slab = self.shards[shard].write();
        for &(id, v) in updates {
            debug_assert_eq!(id as usize % self.shards.len(), shard);
            let slot = id as usize / self.shards.len();
            let Some(old) = slab.get_mut(slot) else {
                debug_assert!(false, "verdict publish for unknown link {id}");
                continue;
            };
            if old.elevated != v.elevated {
                let ixp = ixp_of.get(id as usize).copied().unwrap_or(0) as usize;
                if v.elevated {
                    self.elevated.fetch_add(1, Ordering::Relaxed);
                    if let Some(a) = self.elevated_per_ixp.get(ixp) {
                        a.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    self.elevated.fetch_sub(1, Ordering::Relaxed);
                    if let Some(a) = self.elevated_per_ixp.get(ixp) {
                        a.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            *old = v;
        }
    }

    /// Rebuild the aggregates from the stored verdicts (used after resume,
    /// when verdicts are republished from restored link states).
    pub fn rebuild_aggregates(&self, ixp_of: &[u32]) {
        self.elevated.store(0, Ordering::Relaxed);
        for a in &self.elevated_per_ixp {
            a.store(0, Ordering::Relaxed);
        }
        for (s, slab) in self.shards.iter().enumerate() {
            let slab = slab.read();
            for (slot, v) in slab.iter().enumerate() {
                if v.elevated {
                    let id = slot * self.shards.len() + s;
                    self.elevated.fetch_add(1, Ordering::Relaxed);
                    let ixp = ixp_of.get(id).copied().unwrap_or(0) as usize;
                    if let Some(a) = self.elevated_per_ixp.get(ixp) {
                        a.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(round: u64, elevated: bool) -> LinkVerdict {
        LinkVerdict { round, elevated, ..LinkVerdict::empty() }
    }

    #[test]
    fn layout_strides_links_across_shards() {
        let idx = VerdictIndex::new(10, 3, 1);
        assert_eq!(idx.shard_count(), 3);
        // 10 links over 3 shards: shard 0 gets ids 0,3,6,9 (4 slots).
        let ixp_of = vec![0u32; 10];
        idx.publish(0, &[(9, v(5, false))], &ixp_of);
        assert_eq!(idx.verdict(9).round, 5);
        assert_eq!(idx.verdict(0).round, 0);
    }

    #[test]
    fn elevated_aggregates_track_transitions() {
        let idx = VerdictIndex::new(8, 2, 3);
        let ixp_of = vec![0, 0, 1, 1, 2, 2, 2, 2];
        idx.publish(0, &[(0, v(1, true)), (2, v(1, true)), (4, v(1, true))], &ixp_of);
        assert_eq!(idx.elevated_links(), 3);
        assert_eq!(idx.elevated_at_ixp(0), 1);
        assert_eq!(idx.elevated_at_ixp(1), 1);
        assert_eq!(idx.elevated_at_ixp(2), 1);
        // Republishing elevated is not a transition.
        idx.publish(0, &[(0, v(2, true))], &ixp_of);
        assert_eq!(idx.elevated_links(), 3);
        // De-elevating is.
        idx.publish(0, &[(2, v(3, false))], &ixp_of);
        assert_eq!(idx.elevated_links(), 2);
        assert_eq!(idx.elevated_at_ixp(1), 0);
        idx.rebuild_aggregates(&ixp_of);
        assert_eq!(idx.elevated_links(), 2);
        assert_eq!(idx.elevated_at_ixp(0), 1);
    }

    #[test]
    fn out_of_range_reads_are_empty_not_fatal() {
        let idx = VerdictIndex::new(10, 3, 1);
        // id 10 maps to shard 1 slot 3, one past the slab end.
        assert_eq!(idx.verdict(10), LinkVerdict::empty());
        assert_eq!(idx.verdict(u32::MAX), LinkVerdict::empty());
    }

    #[test]
    fn reads_are_counted() {
        let idx = VerdictIndex::new(4, 2, 1);
        for i in 0..4 {
            let _ = idx.verdict(i);
        }
        assert_eq!(idx.reads_total(), 4);
        assert!(idx.take_read_qps() >= 0.0);
    }

    #[test]
    fn concurrent_readers_never_block_each_other() {
        use std::sync::Arc;
        let idx = Arc::new(VerdictIndex::new(64, 4, 1));
        let ixp_of = Arc::new(vec![0u32; 64]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let idx = Arc::clone(&idx);
                s.spawn(move || {
                    for i in 0..1000u32 {
                        let _ = idx.verdict((i + t) % 64);
                    }
                });
            }
            let idx2 = Arc::clone(&idx);
            let ixp = Arc::clone(&ixp_of);
            s.spawn(move || {
                for r in 0..100u64 {
                    for shard in 0..4usize {
                        let ups: Vec<(u32, LinkVerdict)> = (0..16u32)
                            .map(|slot| (slot * 4 + shard as u32, v(r, r % 2 == 0)))
                            .collect();
                        idx2.publish(shard, &ups, &ixp);
                    }
                }
            });
        });
        assert!(idx.reads_total() >= 4000);
        // Final publish round r=99 (odd): nothing elevated.
        assert_eq!(idx.elevated_links(), 0);
    }
}
