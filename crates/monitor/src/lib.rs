//! # ixp-monitor — the resident always-on congestion monitor
//!
//! The paper closes (§8) with the intent to keep analyzing TSLP data
//! continuously — a production monitor, not a retrospective study. This
//! crate is that service, built from the pieces the batch pipeline already
//! trusts:
//!
//! - [`state`] — per-link streaming state: one [`ixp_chgpt::OnlineDetector`]
//!   (Page's CUSUM), path-fingerprint change tracking with the same causal
//!   masking rule the batch assessment uses, and an incremental
//!   measurement-health ladder mirroring [`tslp_core::health`]'s precedence.
//!   Fed sample-by-sample, the verdict stream is **bit-identical** to
//!   running [`ixp_chgpt::online_events`] over the full series (tested
//!   across the chaos/storm fault corpus).
//! - [`index`] — the concurrent verdict index: per-shard `RwLock`ed verdict
//!   slabs that absorb heavy read traffic (dashboards, alerting pollers)
//!   without stalling ingestion, plus lock-free elevated-link aggregates
//!   per IXP.
//! - [`service`] — [`MonitorService`]: shard layout, batched ingestion
//!   (sequential or across a thread pool, bit-identical either way), live
//!   gauges through any [`ixp_obs::Recorder`], and checkpoint/resume of the
//!   full shard state through [`tslp_core::CheckpointStore`] blobs so a
//!   restarted monitor continues exactly where it stopped.
//!
//! Memory is O(links × window): no link retains its RTT series — only the
//! O(1) detector state and the current health window counters.

#![warn(missing_docs)]

pub mod index;
pub mod service;
pub mod state;

pub use index::{LinkVerdict, MaskOutcome, VerdictEvidence, VerdictIndex};
pub use service::{
    monitor_fingerprint, IngestReport, LinkDesc, MonitorConfig, MonitorService, ResumeReport,
    SeqStats, ServiceMode, ShardRecovery,
};
pub use state::{
    masked_online_events, AdmitDelta, LinkState, LinkUpdate, MonitorEvent, MonitorSample, SeqGate,
    REORDER_CAP,
};

/// Common imports.
pub mod prelude {
    pub use crate::index::{LinkVerdict, MaskOutcome, VerdictEvidence, VerdictIndex};
    pub use crate::service::{
        monitor_fingerprint, IngestReport, LinkDesc, MonitorConfig, MonitorService, ResumeReport,
        SeqStats, ServiceMode, ShardRecovery,
    };
    pub use crate::state::{
        masked_online_events, AdmitDelta, LinkState, LinkUpdate, MonitorEvent, MonitorSample,
        SeqGate, REORDER_CAP,
    };
}
