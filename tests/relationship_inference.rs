//! The AS-rank stand-in at scale: Gao-style relationship inference over a
//! synthetic valley-free Internet, validated against ground truth — the
//! quality bar for the relationship data bdrmap consumes (§4).

use african_ixp_congestion::registry::prelude::*;
use african_ixp_congestion::simnet::prelude::{Asn, HashNoise};
use std::collections::HashSet;

/// Build a 3-tier hierarchy: `t1` tier-1s (full peer mesh), `t2` regionals
/// (customers of 2 tier-1s, peering with some siblings-in-tier), `t3` stubs
/// (customers of 2 regionals). Returns (truth, valley-free paths).
fn synthetic_internet(t1: u32, t2: u32, t3: u32, seed: u64) -> (RelationshipDb, Vec<Vec<Asn>>) {
    let noise = HashNoise::new(seed);
    let mut truth = RelationshipDb::new();
    let tier1: Vec<Asn> = (0..t1).map(|i| Asn(100 + i)).collect();
    let tier2: Vec<Asn> = (0..t2).map(|i| Asn(1000 + i)).collect();
    let tier3: Vec<Asn> = (0..t3).map(|i| Asn(10_000 + i)).collect();

    for (i, &a) in tier1.iter().enumerate() {
        for &b in &tier1[i + 1..] {
            truth.set(a, b, Relationship::PeerOf);
        }
    }
    let mut providers_of = std::collections::HashMap::new();
    for (i, &r) in tier2.iter().enumerate() {
        let p1 = tier1[i % tier1.len() as usize];
        let p2 = tier1[(i / 2 + 1) % tier1.len() as usize];
        truth.set(r, p1, Relationship::CustomerOf);
        if p2 != p1 {
            truth.set(r, p2, Relationship::CustomerOf);
        }
        providers_of.insert(r, (p1, p2));
    }
    let mut stub_providers = std::collections::HashMap::new();
    for (i, &s) in tier3.iter().enumerate() {
        let r1 = tier2[i % tier2.len() as usize];
        let r2 = tier2[(i * 7 + 3) % tier2.len() as usize];
        truth.set(s, r1, Relationship::CustomerOf);
        if r2 != r1 {
            truth.set(s, r2, Relationship::CustomerOf);
        }
        stub_providers.insert(s, (r1, r2));
    }

    // Valley-free paths: stub → regional → tier1 [→ tier1 peer → regional → stub].
    let mut paths = Vec::new();
    for (si, &s) in tier3.iter().enumerate() {
        for k in 0..6u64 {
            let (r1, _) = stub_providers[&s];
            let (p1, _) = providers_of[&r1];
            let dst = tier3[(noise.u64(1, si as u64 * 31 + k) % tier3.len() as u64) as usize];
            if dst == s {
                continue;
            }
            let (dr1, _) = stub_providers[&dst];
            let (dp1, _) = providers_of[&dr1];
            let mut path = vec![s, r1, p1];
            if dp1 != p1 {
                path.push(dp1); // tier-1 peering hop
            }
            path.push(dr1);
            path.push(dst);
            path.dedup();
            paths.push(path);
        }
    }
    (truth, paths)
}

#[test]
fn inference_recovers_hierarchy() {
    let (truth, paths) = synthetic_internet(4, 20, 150, 7);
    assert!(paths.len() > 500);
    let inferred = infer_relationships(&paths, &HashSet::new());
    let agreement = truth.agreement_with(&inferred).expect("overlapping edges");
    assert!(agreement >= 0.85, "agreement {agreement:.3} over {} inferred edges", inferred.len());
}

#[test]
fn customer_provider_direction_mostly_right() {
    let (truth, paths) = synthetic_internet(3, 12, 80, 11);
    let inferred = infer_relationships(&paths, &HashSet::new());
    // Specifically check c2p direction (where Gao's heuristic earns its keep).
    let mut checked = 0;
    let mut right = 0;
    for (a, b, r) in truth.edges() {
        if r == Relationship::PeerOf {
            continue;
        }
        if let Some(inf) = inferred.get(a, b) {
            checked += 1;
            if inf == r {
                right += 1;
            }
        }
    }
    assert!(checked > 50, "only {checked} c2p edges overlapped");
    let frac = right as f64 / checked as f64;
    assert!(frac >= 0.9, "c2p direction right {frac:.3}");
}
