//! End-to-end integration tests: substrate → bdrmap → TSLP → assessment,
//! exercising the decision chain of §5.2 across crate boundaries.

use african_ixp_congestion::prober::prelude::*;
use african_ixp_congestion::prober::tslp::TslpTarget;
use african_ixp_congestion::simnet::prelude::*;
use african_ixp_congestion::study::prelude::*;
use african_ixp_congestion::topology::paper_vps;
use african_ixp_congestion::traffic::{DiurnalLoad, Shape};
use african_ixp_congestion::tslp::prelude::*;
use std::sync::Arc;

/// A small custom network where congestion sits on the *internal* link —
/// the near-side guard must reject the far elevation.
#[test]
fn near_guard_rejects_upstream_congestion() {
    let mut net = Network::new(91);
    let vp = net.add_node(NodeKind::Host, Asn(1), "vp");
    let core = net.add_node(NodeKind::Router, Asn(1), "core");
    let border = net.add_node(NodeKind::Router, Asn(1), "border");
    let peer = net.add_node(NodeKind::Router, Asn(2), "peer");

    net.connect_idle(vp, Ipv4::new(10, 0, 0, 2), core, Ipv4::new(10, 0, 0, 1), LinkConfig::default());
    // Internal core→border link is the congested one.
    let hot = LinkConfig {
        capacity_bps: Schedule::constant(1e8),
        buffer_bytes: Schedule::constant(250_000.0),
        ..LinkConfig::default()
    };
    let load = DiurnalLoad {
        base_bps: 5.5e7,
        weekday_peak_bps: 5.5e7,
        weekend_peak_bps: 5.5e7,
        shape: Shape::Plateau { start_hour: 9.0, end_hour: 17.0, ramp_hours: 2.0 },
        noise_frac: 0.03,
        noise_bin: SimDuration::from_mins(5),
        noise: net.noise().child(9, 9),
    };
    net.connect(core, Ipv4::new(10, 0, 1, 1), border, Ipv4::new(10, 0, 1, 2), hot, Arc::new(load), Arc::new(NoLoad));
    // Healthy interdomain link.
    net.connect_idle(border, Ipv4::new(10, 0, 2, 1), peer, Ipv4::new(10, 0, 2, 2), LinkConfig::default());

    let prefix: Prefix = "41.9.0.0/24".parse().unwrap();
    net.add_route(vp, Prefix::DEFAULT, IfaceId(0));
    net.add_route(core, "10.0.0.0/24".parse().unwrap(), IfaceId(0));
    net.add_route(core, Prefix::DEFAULT, IfaceId(1));
    net.add_route(border, Prefix::DEFAULT, IfaceId(0));
    net.add_route(border, prefix, IfaceId(1));
    net.add_route(peer, Prefix::DEFAULT, IfaceId(0));
    net.add_route(peer, prefix, IfaceId(0));

    let target = TslpTarget {
        dst: prefix.addr(9),
        near_ttl: 2, // border
        far_ttl: 3,  // peer
        near_addr: Ipv4::new(10, 0, 1, 2),
        far_addr: Ipv4::new(10, 0, 2, 2),
    };
    let campaign = CampaignConfig::exact(SimTime::from_date(2016, 3, 1), SimTime::from_date(2016, 3, 22));
    let (series, _) = measure_link(&net, vp, &target, &campaign);
    let a = assess_link(&series, &AssessConfig::default());
    // Far series rises diurnally (it crosses the hot internal link), but so
    // does the near series: the link must NOT be called congested.
    assert!(a.flagged, "the elevation itself must be seen");
    assert_eq!(a.near_guard, NearGuard::CoincidentShifts);
    assert!(!a.congested);
}

/// Threshold sensitivity end-to-end: a ~12 ms diurnal queue is potentially
/// congested at 5 and 10 ms but disappears at 15/20 ms (Table 1 mechanics).
#[test]
fn threshold_sweep_end_to_end() {
    let mut net = Network::new(92);
    let vp = net.add_node(NodeKind::Host, Asn(1), "vp");
    let border = net.add_node(NodeKind::Router, Asn(1), "border");
    let peer = net.add_node(NodeKind::Router, Asn(2), "peer");
    net.connect_idle(vp, Ipv4::new(10, 0, 0, 2), border, Ipv4::new(10, 0, 0, 1), LinkConfig::default());
    let port = LinkConfig {
        capacity_bps: Schedule::constant(1e8),
        buffer_bytes: Schedule::constant(150_000.0), // 12 ms at 100 Mbps
        ..LinkConfig::default()
    };
    let load = DiurnalLoad {
        base_bps: 6e7,
        weekday_peak_bps: 5e7,
        weekend_peak_bps: 5e7,
        shape: Shape::Plateau { start_hour: 11.0, end_hour: 15.0, ramp_hours: 1.5 },
        noise_frac: 0.02,
        noise_bin: SimDuration::from_mins(5),
        noise: net.noise().child(3, 3),
    };
    net.connect(border, Ipv4::new(10, 0, 1, 1), peer, Ipv4::new(196, 49, 14, 30), port, Arc::new(load), Arc::new(NoLoad));
    let prefix: Prefix = "41.8.0.0/24".parse().unwrap();
    net.add_route(vp, Prefix::DEFAULT, IfaceId(0));
    net.add_route(border, "10.0.0.0/24".parse().unwrap(), IfaceId(0));
    net.add_route(border, prefix, IfaceId(1));
    net.add_route(peer, Prefix::DEFAULT, IfaceId(0));
    net.add_route(peer, prefix, IfaceId(0));

    let target = TslpTarget {
        dst: prefix.addr(9),
        near_ttl: 1,
        far_ttl: 2,
        near_addr: Ipv4::new(10, 0, 0, 1),
        far_addr: Ipv4::new(196, 49, 14, 30),
    };
    let campaign = CampaignConfig::exact(SimTime::from_date(2016, 3, 1), SimTime::from_date(2016, 3, 29));
    let (series, _) = measure_link(&net, vp, &target, &campaign);
    let sweep = assess_at_thresholds(&series, &AssessConfig::default(), &[5.0, 10.0, 15.0, 20.0]);
    let flags: Vec<bool> = sweep.iter().map(|(_, a)| a.flagged).collect();
    assert_eq!(flags, vec![true, true, false, false], "{flags:?}");
    assert!(sweep[0].1.diurnal && sweep[1].1.diurnal);
}

/// Asymmetric return path: the RR check must catch it, and the §6.1 link
/// verdict must not count an asymmetric candidate as congested.
#[test]
fn rr_asymmetry_detected_end_to_end() {
    let mut net = Network::new(93);
    let vp = net.add_node(NodeKind::Host, Asn(1), "vp");
    let border = net.add_node(NodeKind::Router, Asn(1), "border");
    let peer = net.add_node(NodeKind::Router, Asn(2), "peer");
    net.connect_idle(vp, Ipv4::new(10, 0, 0, 2), border, Ipv4::new(10, 0, 0, 1), LinkConfig::default());
    net.connect_idle(border, Ipv4::new(10, 0, 1, 1), peer, Ipv4::new(10, 0, 1, 2), LinkConfig::default());
    // Parallel return-only link.
    net.connect_idle(peer, Ipv4::new(10, 0, 3, 1), border, Ipv4::new(10, 0, 3, 2), LinkConfig::default());
    net.add_route(vp, Prefix::DEFAULT, IfaceId(0));
    net.add_route(border, "10.0.0.0/24".parse().unwrap(), IfaceId(0));
    net.add_route(border, "10.0.1.2/32".parse().unwrap(), IfaceId(1));
    // Peer returns everything via the second link.
    let back = net.node(peer).iface_by_addr(Ipv4::new(10, 0, 3, 1)).unwrap();
    net.add_route(peer, Prefix::DEFAULT, back);

    let mut links = std::collections::HashMap::new();
    for nid in net.node_ids() {
        for iface in &net.node(nid).ifaces {
            if let Some((lid, _)) = iface.link {
                links.insert(iface.addr, lid.0 as u64);
            }
        }
    }
    let resolve = |a: Ipv4| links.get(&a).copied();
    let mut ctx = net.probe_ctx(0);
    let verdict = record_route_symmetry(&net, &mut ctx, vp, Ipv4::new(10, 0, 1, 2), resolve, SimTime::ZERO);
    assert_eq!(verdict, Symmetry::Asymmetric);
}

/// The QCELL–NETPAGE story end to end over a short window, through the full
/// study orchestration (discovery included).
#[test]
fn netpage_detected_and_transient() {
    let spec = &paper_vps()[3];
    let cfg = VpStudyConfig {
        window: Some((SimTime::from_date(2016, 2, 22), SimTime::from_date(2016, 6, 1))),
        with_loss: false,
        keep_series: false,
        ..Default::default()
    };
    let study = run_vp_study(spec, &cfg);
    let netpage = study.outcomes.iter().find(|o| o.far_name == "NETPAGE").expect("NETPAGE discovered");
    assert!(netpage.congested(), "NETPAGE must be called congested");
    assert_eq!(netpage.assessment.sustained, Some(false), "mitigated by the upgrade");
    assert_eq!(netpage.symmetry, Some(Symmetry::Symmetric));
    // No healthy link is called congested.
    let c = confusion(&study);
    assert_eq!(c.false_positives, 0, "{c:?}");
    assert!(c.true_positives >= 1);
}

/// Loss probing ties into events: during NETPAGE phase-1 events loss is
/// substantial; after the upgrade it vanishes.
#[test]
fn loss_correlates_with_congestion() {
    let spec = &paper_vps()[3];
    let substrate = african_ixp_congestion::topology::build_vp(spec, 0xAF12_2017);
    let netpage = substrate.links.iter().find(|l| l.far_name == "NETPAGE").unwrap().clone();
    let lc = LossCampaignConfig {
        start: SimTime::from_datetime(2016, 3, 9, 11, 0, 0), // Wed, phase-1 peak
        end: SimTime::from_datetime(2016, 3, 9, 15, 0, 0),
        every: SimDuration::from_hours(1),
        batch_size: 100,
        probe_interval: SimDuration::from_secs(1),
    };
    let during = measure_loss_series(&substrate.net, substrate.vp, netpage.dst, netpage.far_ttl, &lc);
    assert!(during.mean() > 0.05, "peak-hour loss {}", during.mean());

    let lc2 = LossCampaignConfig {
        start: SimTime::from_datetime(2016, 6, 8, 11, 0, 0), // after the upgrade
        end: SimTime::from_datetime(2016, 6, 8, 15, 0, 0),
        ..lc
    };
    // No reset needed: measure_loss_series walks a fresh per-call ProbeCtx.
    let after = measure_loss_series(&substrate.net, substrate.vp, netpage.dst, netpage.far_ttl, &lc2);
    assert!(after.mean() < 0.02, "post-upgrade loss {}", after.mean());
}
