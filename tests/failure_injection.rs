//! Failure injection: the pipeline must degrade the way §5.2 describes —
//! tagging links "unclear" or leaving them unflagged — rather than invent
//! congestion when routers rate-limit ICMP, go silent mid-campaign, or
//! drop probes randomly.

use african_ixp_congestion::prober::tslp::TslpTarget;
use african_ixp_congestion::simnet::prelude::*;
use african_ixp_congestion::tslp::prelude::*;
use std::sync::Arc;

fn line() -> (Network, NodeId, TslpTarget) {
    let mut net = Network::new(123);
    let vp = net.add_node(NodeKind::Host, Asn(1), "vp");
    let border = net.add_node(NodeKind::Router, Asn(1), "border");
    let peer = net.add_node(NodeKind::Router, Asn(2), "peer");
    net.connect_idle(vp, Ipv4::new(10, 0, 0, 2), border, Ipv4::new(10, 0, 0, 1), LinkConfig::default());
    net.connect_idle(border, Ipv4::new(10, 0, 1, 1), peer, Ipv4::new(10, 0, 1, 2), LinkConfig::default());
    let prefix: Prefix = "41.5.0.0/24".parse().unwrap();
    net.add_route(vp, Prefix::DEFAULT, IfaceId(0));
    net.add_route(border, "10.0.0.0/24".parse().unwrap(), IfaceId(0));
    net.add_route(border, prefix, IfaceId(1));
    net.add_route(peer, Prefix::DEFAULT, IfaceId(0));
    net.add_route(peer, prefix, IfaceId(0));
    let target = TslpTarget {
        dst: prefix.addr(9),
        near_ttl: 1,
        far_ttl: 2,
        near_addr: Ipv4::new(10, 0, 0, 1),
        far_addr: Ipv4::new(10, 0, 1, 2),
    };
    (net, vp, target)
}

fn week_campaign() -> CampaignConfig {
    CampaignConfig::exact(SimTime::from_date(2016, 3, 1), SimTime::from_date(2016, 3, 15))
}

#[test]
fn icmp_rate_limited_far_router_not_flagged() {
    let (mut net, vp, target) = line();
    // Severe rate limiting: most probes unanswered, survivors normal.
    net.node_mut(NodeId(2)).icmp.rate_limit_pps = Some(0.002); // ~1 per 8 min
    let (series, _) = measure_link(&mut net, vp, &target, &week_campaign());
    assert!(series.far_validity() < 0.9, "rate limiter had no effect");
    let a = assess_link(&series, &AssessConfig::default());
    assert!(!a.flagged, "rate limiting alone must not look like congestion");
    assert!(!a.congested);
}

#[test]
fn mid_campaign_silence_handled() {
    // Far router stops answering after a week (maintenance, ACL change).
    let (mut net, vp, target) = line();
    let cfg = week_campaign();
    // Run the first half, mute, run the second half.
    let half = SimTime::from_date(2016, 3, 8);
    let c1 = CampaignConfig { end: half, ..cfg };
    let (mut series, _) = measure_link(&mut net, vp, &target, &c1);
    net.node_mut(NodeId(2)).icmp.responsive = false;
    let c2 = CampaignConfig { start: half, ..cfg };
    let (tail, _) = measure_link(&mut net, vp, &target, &c2);
    series.near_ms.extend_from_slice(&tail.near_ms);
    series.far_ms.extend_from_slice(&tail.far_ms);
    let a = assess_link(&series, &AssessConfig::default());
    assert!((0.4..0.6).contains(&a.far_validity), "{}", a.far_validity);
    assert!(!a.congested, "silence is not congestion");
}

#[test]
fn random_loss_floor_not_flagged() {
    // 10% random loss on the interdomain link, no queueing. base_loss is
    // fixed at link construction, so build the topology directly.
    let (_, _, target) = line();
    let mut net2 = Network::new(124);
    let vp2 = net2.add_node(NodeKind::Host, Asn(1), "vp");
    let border = net2.add_node(NodeKind::Router, Asn(1), "border");
    let peer = net2.add_node(NodeKind::Router, Asn(2), "peer");
    net2.connect_idle(vp2, Ipv4::new(10, 0, 0, 2), border, Ipv4::new(10, 0, 0, 1), LinkConfig::default());
    net2.connect(
        border,
        Ipv4::new(10, 0, 1, 1),
        peer,
        Ipv4::new(10, 0, 1, 2),
        LinkConfig { base_loss: 0.10, ..LinkConfig::default() },
        Arc::new(NoLoad),
        Arc::new(NoLoad),
    );
    let prefix: Prefix = "41.5.0.0/24".parse().unwrap();
    net2.add_route(vp2, Prefix::DEFAULT, IfaceId(0));
    net2.add_route(border, "10.0.0.0/24".parse().unwrap(), IfaceId(0));
    net2.add_route(border, prefix, IfaceId(1));
    net2.add_route(peer, Prefix::DEFAULT, IfaceId(0));
    net2.add_route(peer, prefix, IfaceId(0));

    let (series, _) = measure_link(&mut net2, vp2, &target, &week_campaign());
    // Loss shows up in validity (some rounds lose both attempts both ways),
    // but RTTs stay flat: nothing to flag.
    let a = assess_link(&series, &AssessConfig::default());
    assert!(!a.flagged, "random loss must not create level shifts");
    // And the loss-rate machinery sees it.
    let lc = LossCampaignConfig::paper(SimTime::from_date(2016, 3, 1), SimTime::from_date(2016, 3, 2));
    net2.reset_queue_state();
    let ls = measure_loss_series(&mut net2, vp2, target.dst, target.far_ttl, &lc);
    assert!((0.10..0.30).contains(&ls.mean()), "loss series mean {}", ls.mean());
}

#[test]
fn loopback_sourced_icmp_breaks_addr_expectations_not_pipeline() {
    // A far router that sources ICMP from a fixed (loopback) address: the
    // far series still measures, but the responder-mismatch counter records
    // the inconsistency instead of silently mislabeling.
    let (mut net, vp, target) = line();
    net.node_mut(NodeId(2)).icmp.respond_from = RespondFrom::Fixed(Ipv4::new(41, 5, 0, 1));
    let (series, _) = measure_link(&mut net, vp, &target, &week_campaign());
    assert!(series.far_validity() > 0.9);
    assert!(series.far_addr_consistency() < 0.1, "mismatches must be recorded");
    let a = assess_link(&series, &AssessConfig::default());
    assert!(!a.congested);
}

#[test]
fn fault_plan_loopback_sourcing_reads_addr_unstable_never_congested() {
    // Same pathology injected through the FaultPlan compiler, then pushed
    // through the health classifier and the masked assessment: the link
    // lands in the AddrUnstable class and the verdict stays untrusted.
    let (mut net, vp, target) = line();
    FaultPlan::new()
        .with(Fault::LoopbackSourced { node: NodeId(2), addr: Ipv4::new(198, 51, 100, 9) })
        .apply(&mut net);
    let (series, _) = measure_link(&net, vp, &target, &week_campaign());
    assert!(series.far_validity() > 0.9, "responses still arrive");
    assert!(series.far_addr_consistency() < 0.1, "every reply from the fixed address");
    let mask = classify_link(&series, &HealthConfig::default());
    assert_eq!(mask.overall, LinkHealth::AddrUnstable);
    let a = assess_link_masked(&series, &AssessConfig::default(), &mask);
    assert!(!a.congested, "an address-unstable series must never read congested");
}

#[test]
fn fault_plan_rate_limiter_reads_rate_limited_never_congested() {
    // A 0.002 pps limiter starves ~40% of the 5-minute rounds in short
    // scattered runs: the health classifier calls it RateLimited and the
    // masked assessment refuses to flag it.
    let (mut net, vp, target) = line();
    FaultPlan::new().with(Fault::IcmpRateLimit { node: NodeId(2), pps: 0.002 }).apply(&mut net);
    let (series, _) = measure_link(&net, vp, &target, &week_campaign());
    assert!(series.far_validity() < 0.9, "limiter had no effect");
    let mask = classify_link(&series, &HealthConfig::default());
    assert_eq!(mask.overall, LinkHealth::RateLimited);
    let a = assess_link_masked(&series, &AssessConfig::default(), &mask);
    assert!(!a.flagged, "token starvation must not look like a level shift");
    assert!(!a.congested);
}
