//! §5.1's geolocation cross-check at the study level: both ends of IXP
//! links should geolocate (database + rDNS hints) to the IXP's country for
//! the overwhelming majority of links, despite the injected commercial-
//! database error rate.

use african_ixp_congestion::geo::rdns::parse_hints;
use african_ixp_congestion::simnet::prelude::*;
use african_ixp_congestion::study::prelude::*;
use african_ixp_congestion::topology::{build_vp, paper_vps};

#[test]
fn ixp_links_geolocate_to_ixp_country() {
    let spec = &paper_vps()[3]; // VP4 @ SIXP (GM)
    let cfg = VpStudyConfig {
        window: Some((SimTime::from_date(2016, 2, 22), SimTime::from_date(2016, 3, 22))),
        with_loss: false,
        with_rr: false,
        keep_series: false,
        ..Default::default()
    };
    let study = run_vp_study(spec, &cfg);
    let checked: Vec<_> = study.outcomes.iter().filter(|o| o.geo_consistent.is_some()).collect();
    assert!(!checked.is_empty(), "no link had any geolocation coverage");
    let consistent = checked.iter().filter(|o| o.geo_consistent == Some(true)).count();
    let frac = consistent as f64 / checked.len() as f64;
    assert!(frac >= 0.6, "only {frac:.2} of covered links geolocate home (error model is 8%)");
}

#[test]
fn rdns_table_parses_back() {
    let spec = &paper_vps()[0]; // VP1 @ GIXA (GH)
    let s = build_vp(spec, 42);
    assert!(!s.rdns.is_empty(), "rDNS table empty");
    let mut hinted = 0;
    for (addr, host) in &s.rdns {
        let hints = parse_hints(host).unwrap_or_else(|| panic!("unparseable hostname {host} for {addr}"));
        assert!(!hints.country.is_empty());
        hinted += 1;
    }
    assert!(hinted >= 10, "{hinted} hostnames");
    // Coverage is partial, like real PTR coverage.
    assert!(s.rdns.len() < s.links.len(), "rDNS coverage should be sparse");
}
