//! The online (Page's CUSUM) detector against the offline pipeline, on real
//! campaign series — the §8 "continuous monitoring" extension: a streaming
//! monitor deployed at the VP should raise alarms for the same episodes the
//! retrospective analysis finds.

use african_ixp_congestion::chgpt::online::{online_events, OnlineConfig};
use african_ixp_congestion::simnet::prelude::*;
use african_ixp_congestion::study::prelude::*;
use african_ixp_congestion::topology::paper_vps;

fn netpage_series() -> (african_ixp_congestion::tslp::series::LinkSeries, usize) {
    let spec = &paper_vps()[3];
    let cfg = VpStudyConfig {
        window: Some((SimTime::from_date(2016, 2, 22), SimTime::from_date(2016, 5, 20))),
        with_loss: false,
        ..Default::default()
    };
    let study = run_vp_study(spec, &cfg);
    let netpage = study.outcomes.iter().find(|o| o.far_name == "NETPAGE").expect("NETPAGE");
    let offline_events = netpage.assessment.events.len();
    (netpage.series.clone().expect("series kept"), offline_events)
}

#[test]
fn online_matches_offline_on_netpage() {
    let (series, offline_count) = netpage_series();
    let (far, _) = series.far_clean();
    let online = online_events(&far, OnlineConfig::default());
    assert!(offline_count > 10, "offline found {offline_count}");
    // The streaming detector sees the same daily episodes, within a
    // tolerance for merged/split edges.
    let ratio = online.len() as f64 / offline_count as f64;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "online {} vs offline {offline_count} events",
        online.len()
    );
}

#[test]
fn online_quiet_after_upgrade() {
    let (series, _) = netpage_series();
    // Feed only the post-upgrade window: no alarms.
    let post = series.window(
        SimTime::from_date(2016, 4, 29),
        SimTime::from_date(2016, 5, 20),
    );
    let (far, _) = post.far_clean();
    let events = online_events(&far, OnlineConfig::default());
    assert!(events.is_empty(), "post-upgrade alarms: {events:?}");
}

#[test]
fn online_detector_flags_events_promptly() {
    let (series, _) = netpage_series();
    let (far, idx) = series.far_clean();
    let events = online_events(&far, OnlineConfig::default());
    assert!(!events.is_empty());
    // Every alarm lands during phase 1 (before the upgrade) and inside the
    // loaded part of the day; the bulk fire at the ~09:00 episode onsets
    // (a minority re-trigger on the descending evening ramp after the
    // detector closes the main event).
    let upgrade = SimTime::from_date(2016, 4, 29);
    let mut morning = 0usize;
    for (up, _) in &events {
        let t = series.timestamp(idx[*up]);
        assert!(t < upgrade, "alarm after the upgrade at {t}");
        let h = t.hour_of_day();
        assert!((6.0..19.5).contains(&h), "alarm at odd hour {h}");
        if (7.0..13.0).contains(&h) {
            morning += 1;
        }
    }
    assert!(
        morning * 10 >= events.len() * 7,
        "only {morning}/{} alarms at episode onsets",
        events.len()
    );
}
