//! Reproducibility and substrate invariants.
//!
//! The whole reproduction leans on determinism — identical seeds must give
//! bit-identical campaigns — and on structural invariants of the generated
//! substrate (schedule-consistent populations, probeable links, disjoint
//! addressing).

use african_ixp_congestion::prober::tslp::{tslp_probe, TslpConfig, TslpTarget};
use african_ixp_congestion::simnet::prelude::*;
use african_ixp_congestion::study::prelude::*;
use african_ixp_congestion::topology::{build_vp, paper_vps};
use proptest::prelude::*;

#[test]
fn vp_study_is_bit_deterministic() {
    let spec = &paper_vps()[3];
    let cfg = VpStudyConfig {
        window: Some((SimTime::from_date(2016, 2, 22), SimTime::from_date(2016, 4, 1))),
        with_loss: false,
        keep_series: true,
        ..Default::default()
    };
    let a = run_vp_study(spec, &cfg);
    let b = run_vp_study(spec, &cfg);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!((x.near, x.far, x.far_asn), (y.near, y.far, y.far_asn));
        assert_eq!(x.sweep, y.sweep);
        assert_eq!(x.assessment.events, y.assessment.events);
        match (&x.series, &y.series) {
            (Some(sx), Some(sy)) => {
                assert_eq!(sx.len(), sy.len());
                // Bit-identical RTT streams.
                for (vx, vy) in sx.far_ms.iter().zip(&sy.far_ms) {
                    assert!(vx.to_bits() == vy.to_bits());
                }
            }
            (None, None) => {}
            _ => panic!("series retention differs between runs"),
        }
    }
    for (x, y) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(x.links, y.links);
        assert_eq!(x.neighbors, y.neighbors);
    }
}

#[test]
fn different_seeds_differ() {
    let spec = &paper_vps()[3];
    let a = build_vp(spec, 1);
    let b = build_vp(spec, 2);
    // Same shape (schedule-driven), different stochastic details.
    let far_a: Vec<_> = a.links.iter().map(|l| l.far).collect();
    let far_b: Vec<_> = b.links.iter().map(|l| l.far).collect();
    assert_ne!(far_a, far_b, "seeds must vary the substrate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Substrate invariants hold for arbitrary seeds (the small VPs).
    #[test]
    fn substrate_invariants(seed in 0u64..1000, vp_idx in prop_oneof![Just(0usize), Just(3), Just(5)]) {
        let spec = &paper_vps()[vp_idx];
        let mut s = build_vp(spec, seed);

        // Far addresses are unique across links.
        let mut fars: Vec<_> = s.links.iter().map(|l| l.far).collect();
        let n = fars.len();
        fars.sort();
        fars.dedup();
        prop_assert_eq!(fars.len(), n, "duplicate far addresses");

        // Peering links have their far side on the IXP LAN.
        for l in &s.links {
            if l.at_ixp {
                prop_assert!(s.lan.contains(l.far) || s.mgmt.contains(l.far) || s.mgmt.contains(l.near),
                    "at_ixp link without LAN address: {} -> {}", l.near, l.far);
            }
        }

        // Alive links answer TSLP probes at the first snapshot.
        let t = spec.snapshots[0];
        let mut checked = 0;
        let links: Vec<_> = s.links.iter().filter(|l| l.lifetime.alive_at(t) && l.responsive).take(8).cloned().collect();
        for l in links {
            // Scenario links can legitimately drop probes under overload.
            let is_special = l.far_name == "GHANATEL" || l.far_name == "NETPAGE";
            let target = TslpTarget {
                dst: l.dst, near_ttl: l.near_ttl, far_ttl: l.far_ttl,
                near_addr: l.near, far_addr: l.far,
            };
            let smp = tslp_probe(&mut s.net, s.vp, &target, &TslpConfig::default(), t);
            if !is_special {
                prop_assert!(smp.near.is_some(), "near probe failed for {}", l.far_name);
                prop_assert!(smp.far.is_some(), "far probe failed for {}", l.far_name);
            }
            checked += 1;
        }
        prop_assert!(checked > 0);

        // Neighbor counts at snapshots stay within sane bounds of the spec.
        let peers = s.peers_at(t).len();
        let spec_peers = spec.peers.first().map(|c| c.count).unwrap_or(0);
        prop_assert!(peers >= spec_peers, "peers {} < scheduled {}", peers, spec_peers);
    }
}

#[test]
fn table_rendering_is_stable() {
    let spec = &paper_vps()[3];
    let cfg = VpStudyConfig {
        window: Some((SimTime::from_date(2016, 2, 22), SimTime::from_date(2016, 4, 1))),
        with_loss: false,
        keep_series: false,
        ..Default::default()
    };
    let studies = vec![run_vp_study(spec, &cfg)];
    let r1 = StudyReport::build(&studies).render(&studies);
    let r2 = StudyReport::build(&studies).render(&studies);
    assert_eq!(r1, r2);
    // JSON round-trips.
    let report = StudyReport::build(&studies);
    let back: StudyReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(back.congestion_fraction, report.congestion_fraction);
}
