//! Reproducibility and substrate invariants.
//!
//! The whole reproduction leans on determinism — identical seeds must give
//! bit-identical campaigns — and on structural invariants of the generated
//! substrate (schedule-consistent populations, probeable links, disjoint
//! addressing).

use african_ixp_congestion::prober::tslp::{tslp_probe, TslpConfig, TslpTarget};
use african_ixp_congestion::simnet::prelude::*;
use african_ixp_congestion::study::prelude::*;
use african_ixp_congestion::topology::{build_vp, paper_vps};
use proptest::prelude::*;

#[test]
fn vp_study_is_bit_deterministic() {
    let spec = &paper_vps()[3];
    let cfg = VpStudyConfig {
        window: Some((SimTime::from_date(2016, 2, 22), SimTime::from_date(2016, 4, 1))),
        with_loss: false,
        keep_series: true,
        ..Default::default()
    };
    let a = run_vp_study(spec, &cfg);
    let b = run_vp_study(spec, &cfg);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!((x.near, x.far, x.far_asn), (y.near, y.far, y.far_asn));
        assert_eq!(x.sweep, y.sweep);
        assert_eq!(x.assessment.events, y.assessment.events);
        match (&x.series, &y.series) {
            (Some(sx), Some(sy)) => {
                assert_eq!(sx.len(), sy.len());
                // Bit-identical RTT streams.
                for (vx, vy) in sx.far_ms.iter().zip(&sy.far_ms) {
                    assert!(vx.to_bits() == vy.to_bits());
                }
            }
            (None, None) => {}
            _ => panic!("series retention differs between runs"),
        }
    }
    for (x, y) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(x.links, y.links);
        assert_eq!(x.neighbors, y.neighbors);
    }
}

#[test]
fn different_seeds_differ() {
    let spec = &paper_vps()[3];
    let a = build_vp(spec, 1);
    let b = build_vp(spec, 2);
    // Same shape (schedule-driven), different stochastic details.
    let far_a: Vec<_> = a.links.iter().map(|l| l.far).collect();
    let far_b: Vec<_> = b.links.iter().map(|l| l.far).collect();
    assert_ne!(far_a, far_b, "seeds must vary the substrate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Substrate invariants hold for arbitrary seeds (the small VPs).
    #[test]
    fn substrate_invariants(seed in 0u64..1000, vp_idx in prop_oneof![Just(0usize), Just(3), Just(5)]) {
        let spec = &paper_vps()[vp_idx];
        let s = build_vp(spec, seed);

        // Far addresses are unique across links.
        let mut fars: Vec<_> = s.links.iter().map(|l| l.far).collect();
        let n = fars.len();
        fars.sort();
        fars.dedup();
        prop_assert_eq!(fars.len(), n, "duplicate far addresses");

        // Peering links have their far side on the IXP LAN.
        for l in &s.links {
            if l.at_ixp {
                prop_assert!(s.lan.contains(l.far) || s.mgmt.contains(l.far) || s.mgmt.contains(l.near),
                    "at_ixp link without LAN address: {} -> {}", l.near, l.far);
            }
        }

        // Alive links answer TSLP probes at the first snapshot.
        let t = spec.snapshots[0];
        let mut ctx = s.net.probe_ctx(0);
        let mut checked = 0;
        let links: Vec<_> = s.links.iter().filter(|l| l.lifetime.alive_at(t) && l.responsive).take(8).cloned().collect();
        for l in links {
            // Scenario links can legitimately drop probes under overload.
            let is_special = l.far_name == "GHANATEL" || l.far_name == "NETPAGE";
            let target = TslpTarget {
                dst: l.dst, near_ttl: l.near_ttl, far_ttl: l.far_ttl,
                near_addr: l.near, far_addr: l.far,
            };
            let smp = tslp_probe(&s.net, &mut ctx, s.vp, &target, &TslpConfig::default(), t);
            if !is_special {
                prop_assert!(smp.near.is_some(), "near probe failed for {}", l.far_name);
                prop_assert!(smp.far.is_some(), "far probe failed for {}", l.far_name);
            }
            checked += 1;
        }
        prop_assert!(checked > 0);

        // Neighbor counts at snapshots stay within sane bounds of the spec.
        let peers = s.peers_at(t).len();
        let spec_peers = spec.peers.first().map(|c| c.count).unwrap_or(0);
        prop_assert!(peers >= spec_peers, "peers {} < scheduled {}", peers, spec_peers);
    }
}

/// The campaign fan-out contract: `measure_vp_links` returns the same bits
/// in the same order at every thread count, screening decisions included.
#[test]
fn parallel_campaign_is_bit_identical_at_any_thread_count() {
    use african_ixp_congestion::traffic::{DiurnalLoad, Shape};
    use african_ixp_congestion::tslp::prelude::*;
    use std::sync::Arc;

    // A hub with six branches; odd branches carry a diurnal overload, so
    // screening passes some targets through to full fidelity and
    // short-circuits the rest.
    let mut net = Network::new(7777);
    let vp = net.add_node(NodeKind::Host, Asn(1), "vp");
    let hub = net.add_node(NodeKind::Router, Asn(1), "hub");
    net.connect_idle(vp, Ipv4::new(10, 0, 0, 2), hub, Ipv4::new(10, 0, 0, 1), LinkConfig::default());
    net.add_route(vp, Prefix::DEFAULT, IfaceId(0));
    net.add_route(hub, "10.0.0.0/24".parse().unwrap(), IfaceId(0));

    let mut targets = Vec::new();
    for i in 0..6u8 {
        let border = net.add_node(NodeKind::Router, Asn(1), "border");
        let peer = net.add_node(NodeKind::Router, Asn(100 + i as u32), "peer");
        let port = LinkConfig {
            capacity_bps: Schedule::constant(1e8),
            buffer_bytes: Schedule::constant(150_000.0),
            ..LinkConfig::default()
        };
        let load: Arc<dyn OfferedLoad> = if i % 2 == 1 {
            Arc::new(DiurnalLoad {
                base_bps: 6e7,
                weekday_peak_bps: 5e7,
                weekend_peak_bps: 5e7,
                shape: Shape::Plateau { start_hour: 11.0, end_hour: 15.0, ramp_hours: 1.5 },
                noise_frac: 0.02,
                noise_bin: SimDuration::from_mins(5),
                noise: net.noise().child(40 + i as u64, 7),
            })
        } else {
            Arc::new(NoLoad)
        };
        let near_addr = Ipv4::new(10, i + 1, 1, 2);
        let far_addr = Ipv4::new(10, i + 1, 2, 2);
        net.connect(hub, Ipv4::new(10, i + 1, 1, 1), border, near_addr, port, load, Arc::new(NoLoad));
        net.connect_idle(border, Ipv4::new(10, i + 1, 2, 1), peer, far_addr, LinkConfig::default());
        let prefix: Prefix = format!("41.{i}.0.0/24").parse().unwrap();
        net.add_route(hub, prefix, IfaceId(1 + i as u16));
        net.add_route(border, "10.0.0.0/24".parse().unwrap(), IfaceId(0));
        net.add_route(border, prefix, IfaceId(1));
        net.add_route(peer, Prefix::DEFAULT, IfaceId(0));
        targets.push(TslpTarget {
            dst: prefix.addr(9),
            near_ttl: 2,
            far_ttl: 3,
            near_addr,
            far_addr,
        });
    }

    let base = CampaignConfig::paper(SimTime::from_date(2016, 3, 1), SimTime::from_date(2016, 3, 8));
    let mut seq_cfg = base;
    seq_cfg.threads = 1;
    let seq = measure_vp_links(&net, vp, &targets, &seq_cfg);

    let screened = seq.iter().filter(|(_, sc)| *sc).count();
    assert!(screened >= 1, "clean branches should be screened out");
    assert!(screened < seq.len(), "congested branches must reach full fidelity");

    for threads in [2usize, 4, 0] {
        let mut cfg = base;
        cfg.threads = threads;
        let par = measure_vp_links(&net, vp, &targets, &cfg);
        assert_eq!(par.len(), seq.len());
        for (i, ((ps, psc), (ss, ssc))) in par.iter().zip(&seq).enumerate() {
            assert_eq!(psc, ssc, "screening verdict differs at {threads} threads, target {i}");
            assert_eq!(ps.len(), ss.len(), "series length differs at {threads} threads, target {i}");
            assert_eq!(ps.far_addr_mismatches, ss.far_addr_mismatches);
            for (a, b) in ps.near_ms.iter().zip(&ss.near_ms) {
                assert_eq!(a.to_bits(), b.to_bits(), "near bits differ at {threads} threads, target {i}");
            }
            for (a, b) in ps.far_ms.iter().zip(&ss.far_ms) {
                assert_eq!(a.to_bits(), b.to_bits(), "far bits differ at {threads} threads, target {i}");
            }
        }
    }

    // The measure_vp wrapper reports the same screening count.
    let (_, n) = measure_vp(&net, vp, &targets, &seq_cfg);
    assert_eq!(n, screened);
}

#[test]
fn table_rendering_is_stable() {
    let spec = &paper_vps()[3];
    let cfg = VpStudyConfig {
        window: Some((SimTime::from_date(2016, 2, 22), SimTime::from_date(2016, 4, 1))),
        with_loss: false,
        keep_series: false,
        ..Default::default()
    };
    let studies = vec![run_vp_study(spec, &cfg)];
    let r1 = StudyReport::build(&studies).render(&studies);
    let r2 = StudyReport::build(&studies).render(&studies);
    assert_eq!(r1, r2);
    // JSON round-trips.
    let report = StudyReport::build(&studies);
    let back: StudyReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(back.congestion_fraction, report.congestion_fraction);
}
