//! Cross-crate validation of border mapping against substrate ground truth,
//! mirroring §4's validation ("96.2 % of the neighbors ... correctly
//! discovered").

use african_ixp_congestion::bdrmap::prelude::*;
use african_ixp_congestion::topology::{build_vp, paper_directory, paper_vps, TruthKind};
use std::collections::HashSet;

fn run_snapshot(vp_idx: usize, seed: u64, snap_idx: usize) -> (african_ixp_congestion::topology::VpSubstrate, BdrmapResult, BdrmapAccuracy) {
    let spec = &paper_vps()[vp_idx];
    let s = build_vp(spec, seed);
    let dir = paper_directory();
    let t = spec.snapshots[snap_idx];
    let result = {
        let mapper = IpAsnMapper::new(&s.bgp, &s.delegations, &dir);
        let mut ctx = s.net.probe_ctx(0);
        run_bdrmap(&s.net, &mut ctx, s.vp, spec.host_asn, &HashSet::new(), &mapper, &BdrmapConfig::default(), t)
    };
    let acc = score(&s, &result, t);
    (s, result, acc)
}

#[test]
fn small_vps_all_accurate() {
    // VP1 (GIXA), VP2 (TIX), VP4 (SIXP), VP6 (RINEX) across seeds. A small
    // scripted fraction of neighbors is ICMP-unresponsive (the paper's
    // recall was 96.2 %, not 100 %) — recall is judged against what is
    // discoverable.
    for (vp_idx, seed) in [(0usize, 1u64), (1, 2), (3, 3), (5, 4)] {
        let (s, result, acc) = run_snapshot(vp_idx, seed, 0);
        let t = s.spec.snapshots[0];
        let truth = s.links_at(t);
        let responsive: std::collections::HashSet<_> =
            truth.iter().filter(|l| l.responsive).map(|l| l.far_asn).collect();
        let found = responsive.iter().filter(|a| result.neighbors.contains(a)).count();
        let discoverable_recall = found as f64 / responsive.len().max(1) as f64;
        assert!(discoverable_recall >= 0.95, "VP index {vp_idx}: {acc:?}");
        assert!(acc.neighbor_recall >= 0.8, "VP index {vp_idx}: {acc:?}");
        assert!(acc.neighbor_precision >= 0.95, "VP index {vp_idx}: {acc:?}");
        assert!(acc.link_precision >= 0.95, "VP index {vp_idx}: {acc:?}");
    }
}

#[test]
fn churn_visible_across_snapshots() {
    // GIXA's membership purge (§6.1): later snapshots see fewer links.
    let (_, first, _) = run_snapshot(0, 42, 0);
    let (_, last, _) = run_snapshot(0, 42, 2);
    assert!(
        first.links.len() > last.links.len(),
        "GIXA churn not visible: {} -> {}",
        first.links.len(),
        last.links.len()
    );
    // GHANATEL is gone by the last snapshot (link withdrawn 06/08/2016).
    assert!(first.neighbors.contains(&ixp_simnet::prelude::Asn(29614)));
    assert!(!last.neighbors.contains(&ixp_simnet::prelude::Asn(29614)));
}

#[test]
fn peering_classification_matches_truth() {
    let (s, result, _) = run_snapshot(3, 7, 0); // VP4 @ SIXP
    let t = s.spec.snapshots[0];
    for l in &result.links {
        let truth = s.links_at(t).iter().find(|x| x.near == l.near && x.far == l.far).cloned();
        if let Some(tl) = truth {
            assert_eq!(l.at_ixp, tl.at_ixp, "classification mismatch on {} -> {}", l.near, l.far);
        }
    }
}

#[test]
fn alias_resolution_groups_parallel_links() {
    let (s, result, _) = run_snapshot(0, 42, 0); // VP1
    let t = s.spec.snapshots[0];
    // Ground truth: far addresses of the same neighbor AS belong to one
    // router. Every resolved cluster must be AS-pure.
    let asn_of = |addr| s.links_at(t).iter().find(|l| l.far == addr).map(|l| l.far_asn);
    let mut multi = 0;
    for cluster in &result.routers {
        let asns: HashSet<_> = cluster.iter().filter_map(|&a| asn_of(a)).collect();
        assert!(asns.len() <= 1, "alias cluster mixes ASes: {cluster:?} -> {asns:?}");
        if cluster.len() > 1 {
            multi += 1;
        }
    }
    assert!(multi >= 2, "expected several multi-interface routers, got {multi}");
}

#[test]
fn tslp_targets_derived_from_inference_work() {
    use african_ixp_congestion::prober::tslp::{tslp_probe, TslpConfig, TslpTarget};
    let (s, result, _) = run_snapshot(1, 5, 0); // VP2 @ TIX
    let mut ctx = s.net.probe_ctx(0);
    let t = s.spec.snapshots[0];
    let mut ok = 0;
    let total = result.links.len().min(20);
    for l in result.links.iter().take(20) {
        let target = TslpTarget {
            dst: l.dst,
            near_ttl: l.near_ttl,
            far_ttl: l.far_ttl,
            near_addr: l.near,
            far_addr: l.far,
        };
        let smp = tslp_probe(&s.net, &mut ctx, s.vp, &target, &TslpConfig::default(), t);
        if smp.near.is_some() && smp.far.is_some() && smp.near_addr_ok && smp.far_addr_ok {
            ok += 1;
        }
    }
    assert!(ok as f64 >= 0.9 * total as f64, "only {ok}/{total} inferred targets probeable");
}

#[test]
fn case_study_links_have_correct_truth_kinds() {
    let spec = &paper_vps()[0];
    let s = build_vp(spec, 42);
    let gh = s.links.iter().find(|l| l.far_name == "GHANATEL").unwrap();
    assert!(matches!(gh.kind, TruthKind::CaseStudy { scenario: "GIXA-GHANATEL" }));
    let kn = s.links.iter().find(|l| l.far_name == "KNET").unwrap();
    assert!(matches!(kn.kind, TruthKind::CaseStudy { scenario: "GIXA-KNET" }));
    let noisy = s.links.iter().filter(|l| matches!(l.kind, TruthKind::Noisy { .. })).count();
    assert!(noisy >= 1, "VP1 should carry noisy links for Table 1");
}
